#include "core/identify.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strfmt.hpp"

namespace nbwp::core {

namespace {

/// Threshold→objective memo scoped to one search invocation.  Each
/// evaluation stands for a full run of the sampled algorithm, so
/// re-probing an already-visited threshold (a descent incumbent, the
/// coarse/fine grid overlap) answers from the cache: no second run, no
/// second virtual-cost charge.  Probes are keyed on the clamped threshold;
/// only exact revisits hit, which is what the searches produce.
class MemoEval {
 public:
  explicit MemoEval(const Evaluator& eval)
      : eval_(&eval), start_(std::chrono::steady_clock::now()) {}

  double lo() const { return eval_->lo; }
  double hi() const { return eval_->hi; }

  /// Evaluate (or recall) the clamped threshold, fold it into the running
  /// result, and return the objective.  Budget limits are enforced here,
  /// before each new evaluation: cache hits never trip a deadline.
  double consider(double t, IdentifyResult& r) {
    t = std::clamp(t, eval_->lo, eval_->hi);
    double obj;
    const auto it = cache_.find(t);
    if (it != cache_.end()) {
      obj = it->second;
      ++r.cache_hits;
    } else {
      check_budgets();
      obj = eval_->objective_ns(t);
      cache_.emplace(t, obj);
      const double cost = eval_->cost_ns ? eval_->cost_ns(t) : 0.0;
      r.cost_ns += cost;
      total_cost_ns_ += cost;
      ++r.evaluations;
      ++total_evaluations_;
    }
    if (r.evaluations + r.cache_hits == 1 || obj < r.best_objective) {
      r.best_objective = obj;
      r.best_threshold = t;
    }
    return obj;
  }

 private:
  double wall_elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  void check_budgets() const {
    if (eval_->max_evaluations > 0 &&
        total_evaluations_ >= eval_->max_evaluations) {
      throw IdentifyDeadlineExceeded(
          strfmt("identify: evaluation budget of %d exhausted",
                 eval_->max_evaluations),
          total_evaluations_, wall_elapsed_ns(), total_cost_ns_);
    }
    if (eval_->virtual_budget_ns > 0 &&
        total_cost_ns_ >= eval_->virtual_budget_ns) {
      throw IdentifyDeadlineExceeded(
          strfmt("identify: virtual budget of %.3g ms exhausted after %d "
                 "evaluations",
                 eval_->virtual_budget_ns / 1e6, total_evaluations_),
          total_evaluations_, wall_elapsed_ns(), total_cost_ns_);
    }
    if (eval_->wall_deadline_ns > 0) {
      const double elapsed = wall_elapsed_ns();
      if (elapsed >= eval_->wall_deadline_ns) {
        throw IdentifyDeadlineExceeded(
            strfmt("identify: wall deadline of %.3g ms exceeded after %d "
                   "evaluations",
                   eval_->wall_deadline_ns / 1e6, total_evaluations_),
            total_evaluations_, elapsed, total_cost_ns_);
      }
    }
  }

  const Evaluator* eval_;
  std::chrono::steady_clock::time_point start_;
  std::unordered_map<double, double> cache_;
  int total_evaluations_ = 0;
  double total_cost_ns_ = 0.0;
};

IdentifyResult grid(MemoEval& memo, double lo, double hi, double step) {
  NBWP_REQUIRE(step > 0, "grid step must be positive");
  IdentifyResult r;
  for (double t = lo; t <= hi + 1e-9; t += step) memo.consider(t, r);
  return r;
}

/// Merge a sub-search's accounting (cost, counts) into `into` while
/// keeping `into`'s incumbent unless `from` found a better one.
void fold(IdentifyResult& into, const IdentifyResult& from) {
  into.cost_ns += from.cost_ns;
  into.evaluations += from.evaluations;
  into.cache_hits += from.cache_hits;
  if (from.best_objective < into.best_objective) {
    into.best_objective = from.best_objective;
    into.best_threshold = from.best_threshold;
  }
}

/// Run `search` on `eval`, with per-method accounting when metrics
/// collection is on: objective evaluations, *distinct* thresholds
/// visited, memo hits, and the virtual cost charged to the estimation
/// overhead.
template <typename Search>
IdentifyResult instrumented(const char* method, const Evaluator& eval,
                            const Search& search) {
  // A deadline hit aborts the search; count it under the method so the
  // manifest shows which strategy ran out of budget, then let the caller's
  // fallback chain take over.
  auto counting_deadline = [&](const auto& run) {
    try {
      return run();
    } catch (const IdentifyDeadlineExceeded&) {
      obs::count(std::string("identify.") + method + ".deadline_hits");
      throw;
    }
  };
  if (!obs::metrics_enabled()) {
    const IdentifyResult r = counting_deadline([&] { return search(eval); });
    log_debug(strfmt("identify.%s: t'=%.2f after %d evaluations", method,
                     r.best_threshold, r.evaluations));
    return r;
  }
  std::vector<double> visited;
  Evaluator probe = eval;
  probe.objective_ns = [&eval, &visited](double t) {
    visited.push_back(t);
    return eval.objective_ns(t);
  };
  const IdentifyResult r = counting_deadline([&] { return search(probe); });
  std::sort(visited.begin(), visited.end());
  const auto distinct = static_cast<double>(
      std::unique(visited.begin(), visited.end()) - visited.begin());
  const std::string prefix = std::string("identify.") + method;
  obs::count(prefix + ".calls");
  obs::count(prefix + ".evaluations", r.evaluations);
  obs::count(prefix + ".thresholds_visited", distinct);
  obs::count(prefix + ".cache_hits", r.cache_hits);
  obs::count(prefix + ".virtual_cost_ns", r.cost_ns);
  log_debug(strfmt("identify.%s: t'=%.2f after %d evaluations "
                   "(%.0f distinct thresholds, %d memo hits, "
                   "virtual cost %.3f ms)",
                   method, r.best_threshold, r.evaluations, distinct,
                   r.cache_hits, r.cost_ns / 1e6));
  return r;
}

IdentifyResult coarse_to_fine_impl(const Evaluator& eval, double coarse_step,
                                   double fine_step) {
  MemoEval memo(eval);
  IdentifyResult coarse = grid(memo, eval.lo, eval.hi, coarse_step);
  const double lo = std::max(eval.lo, coarse.best_threshold - coarse_step);
  const double hi = std::min(eval.hi, coarse.best_threshold + coarse_step);
  // The fine grid's endpoints land on coarse points: the memo answers
  // those probes without re-running the sampled algorithm.
  IdentifyResult fine = grid(memo, lo, hi, fine_step);
  fold(fine, coarse);
  return fine;
}

IdentifyResult flat_grid_impl(const Evaluator& eval, double step) {
  MemoEval memo(eval);
  return grid(memo, eval.lo, eval.hi, step);
}

IdentifyResult race_then_fine_impl(const Evaluator& eval, double cpu_all_ns,
                                   double gpu_all_ns, double fine_halfwidth,
                                   double fine_step) {
  NBWP_REQUIRE(cpu_all_ns >= 0 && gpu_all_ns >= 0,
               "device times must be non-negative");
  const double denom = cpu_all_ns + gpu_all_ns;
  const double r0 =
      denom <= 0 ? 50.0
                 : eval.lo + (eval.hi - eval.lo) * gpu_all_ns / denom;
  MemoEval memo(eval);
  IdentifyResult r = grid(memo, std::max(eval.lo, r0 - fine_halfwidth),
                          std::min(eval.hi, r0 + fine_halfwidth), fine_step);
  // The race itself: both devices run in parallel on the whole sample and
  // stop at the first finish.
  r.cost_ns += std::min(cpu_all_ns, gpu_all_ns);
  ++r.evaluations;
  return r;
}

IdentifyResult gradient_descent_impl(const Evaluator& eval,
                                     GradientDescentOptions options) {
  const bool logs = options.log_space;
  NBWP_REQUIRE(!logs || eval.lo > 0, "log-space search needs lo > 0");
  NBWP_REQUIRE(options.starts >= 1, "need at least one start");
  auto fwd = [&](double t) { return logs ? std::log(t) : t; };
  auto back = [&](double x) { return logs ? std::exp(x) : x; };
  const double xlo = fwd(eval.lo), xhi = fwd(eval.hi);

  // One memo across all starts: later starts re-cross earlier basins.
  MemoEval memo(eval);
  IdentifyResult best;
  for (int s = 0; s < options.starts; ++s) {
    IdentifyResult r;
    const double f =
        options.starts == 1
            ? 0.5
            : (static_cast<double>(s) + 0.5) / options.starts;
    memo.consider(back(xlo + f * (xhi - xlo)), r);
    double step = options.initial_step_fraction * (xhi - xlo);
    for (int i = 0; i < options.max_iterations && step > 1e-6 * (xhi - xlo);
         ++i) {
      const double before = r.best_objective;
      const double bx = fwd(r.best_threshold);
      memo.consider(back(std::clamp(bx + step, xlo, xhi)), r);
      memo.consider(back(std::clamp(bx - step, xlo, xhi)), r);
      if (r.best_objective >= before) step *= options.shrink;
    }
    if (s == 0) {
      best = r;
    } else {
      fold(best, r);
    }
  }
  return best;
}

IdentifyResult warm_refine_impl(const Evaluator& eval, double t0,
                                WarmRefineOptions options) {
  MemoEval memo(eval);
  IdentifyResult r;
  // The cached threshold is probed first: the bracket can only improve
  // on it, never lose it.
  memo.consider(t0, r);
  if (options.log_space) {
    NBWP_REQUIRE(eval.lo > 0, "log-space refinement needs lo > 0");
    NBWP_REQUIRE(options.log_ratio > 1.0, "log ratio must exceed 1");
    t0 = std::clamp(t0, eval.lo, eval.hi);
    double factor = options.log_ratio;
    for (int i = 1; i <= options.log_points; ++i, factor *= options.log_ratio) {
      memo.consider(t0 * factor, r);
      memo.consider(t0 / factor, r);
    }
  } else {
    NBWP_REQUIRE(options.step > 0, "refinement step must be positive");
    for (double d = options.step; d <= options.halfwidth + 1e-9;
         d += options.step) {
      memo.consider(t0 + d, r);
      memo.consider(t0 - d, r);
    }
  }
  return r;
}

IdentifyResult golden_section_impl(const Evaluator& eval, double tolerance,
                                   int max_iterations) {
  constexpr double kPhi = 0.6180339887498949;
  MemoEval memo(eval);
  IdentifyResult r;
  double a = eval.lo, b = eval.hi;
  double c = b - kPhi * (b - a);
  double d = a + kPhi * (b - a);
  // consider() returns the objective it measured, so each probed
  // threshold costs exactly one objective_ns run.
  auto probe = [&](double t) { return memo.consider(t, r); };
  double fc = probe(c), fd = probe(d);
  for (int i = 0; i < max_iterations && (b - a) > tolerance; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kPhi * (b - a);
      fc = probe(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kPhi * (b - a);
      fd = probe(d);
    }
  }
  return r;
}

}  // namespace

IdentifyResult coarse_to_fine(const Evaluator& eval, double coarse_step,
                              double fine_step) {
  return instrumented("coarse_to_fine", eval, [&](const Evaluator& e) {
    return coarse_to_fine_impl(e, coarse_step, fine_step);
  });
}

IdentifyResult flat_grid(const Evaluator& eval, double step) {
  return instrumented("flat_grid", eval, [&](const Evaluator& e) {
    return flat_grid_impl(e, step);
  });
}

IdentifyResult race_then_fine(const Evaluator& eval, double cpu_all_ns,
                              double gpu_all_ns, double fine_halfwidth,
                              double fine_step) {
  return instrumented("race_then_fine", eval, [&](const Evaluator& e) {
    return race_then_fine_impl(e, cpu_all_ns, gpu_all_ns, fine_halfwidth,
                               fine_step);
  });
}

IdentifyResult gradient_descent(const Evaluator& eval,
                                GradientDescentOptions options) {
  return instrumented("gradient_descent", eval, [&](const Evaluator& e) {
    return gradient_descent_impl(e, options);
  });
}

IdentifyResult golden_section(const Evaluator& eval, double tolerance,
                              int max_iterations) {
  return instrumented("golden_section", eval, [&](const Evaluator& e) {
    return golden_section_impl(e, tolerance, max_iterations);
  });
}

IdentifyResult warm_refine(const Evaluator& eval, double t0,
                           WarmRefineOptions options) {
  return instrumented("warm_refine", eval, [&](const Evaluator& e) {
    return warm_refine_impl(e, t0, options);
  });
}

}  // namespace nbwp::core
