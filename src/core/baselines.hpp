// Baseline partitioning strategies the paper compares against
// (Sections III-B.2, IV-B.1, V-B):
//
//  * NaiveStatic  — split by the peak-FLOPS ratio of the devices; the GPU
//                   gets ~88% on the paper's testbed.
//  * NaiveAverage — run exhaustive search offline on a suite of inputs,
//                   average the optimal thresholds, and use that single
//                   value for every input (~90 in the paper).
//  * GPU-only     — the "Naive" homogeneous line of Fig. 3(b): no
//                   partitioning, everything on the GPU (t = 0).
//  * CPU-only     — the other degenerate point (t = 100).
//  * FirstRunTraining — Qilin-style [20]: treat the first full run at a
//                   default threshold as a training run; set the threshold
//                   from the device times it observed.  Input-agnostic
//                   across inputs, which is the drawback the paper notes.
#pragma once

#include <span>

#include "hetsim/platform.hpp"

namespace nbwp::core {

/// CPU work share (percent) from the peak-FLOPS ratio.
double naive_static_cpu_share_pct(const hetsim::Platform& platform);

/// Mean of previously found optimal thresholds.
double naive_average_threshold(std::span<const double> optimal_thresholds);

constexpr double gpu_only_threshold() { return 0.0; }    // CPU share 0%
constexpr double cpu_only_threshold() { return 100.0; }  // CPU share 100%

/// Qilin-style: given the device work times observed in one training run,
/// choose the share that would have balanced them.
double first_run_training_threshold(double cpu_work_ns, double gpu_work_ns,
                                    double trained_cpu_share_pct);

}  // namespace nbwp::core
