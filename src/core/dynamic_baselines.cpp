#include "core/dynamic_baselines.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nbwp::core {

ScheduleOutcome work_queue_schedule(size_t items, unsigned chunks,
                                    const RangeCosts& costs) {
  NBWP_REQUIRE(chunks >= 1, "need at least one chunk");
  NBWP_REQUIRE(items >= chunks, "chunks must not outnumber items");
  ScheduleOutcome out;
  const size_t per = items / chunks;
  size_t next_first = 0;
  double cpu_free = 0, gpu_free = 0;
  unsigned issued = 0;
  while (issued < chunks) {
    const size_t first = next_first;
    const size_t last = issued + 1 == chunks ? items : first + per;
    next_first = last;
    ++issued;
    ++out.dispatches;
    // The idle-soonest device pulls the chunk.
    if (cpu_free <= gpu_free) {
      const double span =
          costs.cpu_ns(first, last) + costs.cpu_dispatch_ns;
      cpu_free += span;
      out.cpu_busy_ns += span;
      out.cpu_items += last - first;
    } else {
      const double span =
          costs.gpu_ns(first, last) + costs.gpu_dispatch_ns;
      gpu_free += span;
      out.gpu_busy_ns += span;
      out.gpu_items += last - first;
    }
  }
  out.makespan_ns = std::max(cpu_free, gpu_free);
  return out;
}

ScheduleOutcome profile_rebalance_schedule(size_t items,
                                           double probe_fraction,
                                           const RangeCosts& costs) {
  NBWP_REQUIRE(probe_fraction > 0 && probe_fraction < 1,
               "probe fraction must be interior");
  ScheduleOutcome out;
  const auto probe =
      std::max<size_t>(1, static_cast<size_t>(items * probe_fraction / 2));
  // Two timed probes run concurrently, one per device.
  const double cpu_probe =
      costs.cpu_ns(0, probe) + costs.cpu_dispatch_ns;
  const double gpu_probe =
      costs.gpu_ns(probe, 2 * probe) + costs.gpu_dispatch_ns;
  out.dispatches = 2;
  // Observed rates decide one static split of the remainder — the [6]
  // assumption that probe chunks are representative.
  const double cpu_rate = static_cast<double>(probe) / cpu_probe;
  const double gpu_rate = static_cast<double>(probe) / gpu_probe;
  const size_t remaining = items - 2 * probe;
  const auto cpu_take = static_cast<size_t>(
      static_cast<double>(remaining) * cpu_rate / (cpu_rate + gpu_rate));
  const size_t split = 2 * probe + cpu_take;
  const double cpu_rest =
      cpu_take > 0 ? costs.cpu_ns(2 * probe, split) + costs.cpu_dispatch_ns
                   : 0.0;
  const double gpu_rest =
      split < items ? costs.gpu_ns(split, items) + costs.gpu_dispatch_ns
                    : 0.0;
  out.dispatches += (cpu_take > 0) + (split < items);
  out.cpu_busy_ns = cpu_probe + cpu_rest;
  out.gpu_busy_ns = gpu_probe + gpu_rest;
  out.cpu_items = probe + cpu_take;
  out.gpu_items = items - out.cpu_items;
  out.makespan_ns = std::max(cpu_probe, gpu_probe) +
                    std::max(cpu_rest, gpu_rest);
  return out;
}

ScheduleOutcome best_static_schedule(size_t items, const RangeCosts& costs,
                                     unsigned resolution) {
  NBWP_REQUIRE(resolution >= 1, "resolution must be positive");
  ScheduleOutcome best;
  bool first = true;
  for (unsigned i = 0; i <= resolution; ++i) {
    const size_t split = items * i / resolution;
    const double cpu =
        split > 0 ? costs.cpu_ns(0, split) + costs.cpu_dispatch_ns : 0.0;
    const double gpu = split < items
                           ? costs.gpu_ns(split, items) + costs.gpu_dispatch_ns
                           : 0.0;
    const double makespan = std::max(cpu, gpu);
    if (first || makespan < best.makespan_ns) {
      first = false;
      best.makespan_ns = makespan;
      best.cpu_busy_ns = cpu;
      best.gpu_busy_ns = gpu;
      best.cpu_items = split;
      best.gpu_items = items - split;
      best.dispatches = 2;
    }
  }
  return best;
}

}  // namespace nbwp::core
