#include "core/partition_descriptor.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/strfmt.hpp"

namespace nbwp::core {

bool PartitionDescriptor::valid(double tol) const {
  if (shares.empty()) return false;
  double sum = 0;
  for (double s : shares) {
    if (!(s >= 0.0) || !std::isfinite(s)) return false;
    sum += s;
  }
  return std::abs(sum - 1.0) <= tol;
}

void PartitionDescriptor::normalize() {
  double sum = 0;
  for (double s : shares) sum += s;
  if (sum <= 0 || !std::isfinite(sum)) return;
  for (double& s : shares) s /= sum;
}

std::vector<double> PartitionDescriptor::cumulative_pct() const {
  std::vector<double> cum;
  if (shares.size() < 2) return cum;
  cum.reserve(shares.size() - 1);
  double run = 0;
  for (size_t i = 0; i + 1 < shares.size(); ++i) {
    run += shares[i];
    cum.push_back(std::clamp(run * 100.0, 0.0, 100.0));
  }
  return cum;
}

std::string PartitionDescriptor::to_string() const {
  if (shares.empty()) return "(none)";
  std::string out;
  for (size_t i = 0; i < shares.size(); ++i) {
    if (i > 0) out += " | ";
    const std::string name =
        i == 0 ? "cpu" : (i == 1 ? "gpu" : strfmt("acc%zu", i - 1));
    out += strfmt("%s %.1f%%", name.c_str(), shares[i] * 100.0);
  }
  return out;
}

PartitionDescriptor PartitionDescriptor::two_way(double cpu_share) {
  cpu_share = std::clamp(cpu_share, 0.0, 1.0);
  return {{cpu_share, 1.0 - cpu_share}};
}

PartitionDescriptor PartitionDescriptor::even(int devices) {
  NBWP_REQUIRE(devices >= 1, "descriptor needs at least one device");
  return {std::vector<double>(static_cast<size_t>(devices),
                              1.0 / devices)};
}

PartitionDescriptor PartitionDescriptor::all_cpu(int devices) {
  NBWP_REQUIRE(devices >= 1, "descriptor needs at least one device");
  PartitionDescriptor d;
  d.shares.assign(static_cast<size_t>(devices), 0.0);
  d.shares[0] = 1.0;
  return d;
}

PartitionDescriptor PartitionDescriptor::from_cumulative_pct(
    const std::vector<double>& cum_pct) {
  PartitionDescriptor d;
  d.shares.reserve(cum_pct.size() + 1);
  double prev = 0;
  for (double c : cum_pct) {
    const double clamped = std::clamp(c, prev, 100.0);
    d.shares.push_back((clamped - prev) / 100.0);
    prev = clamped;
  }
  d.shares.push_back((100.0 - prev) / 100.0);
  return d;
}

PartitionDescriptor PartitionDescriptor::from_weights(
    const std::vector<double>& weights) {
  NBWP_REQUIRE(!weights.empty(), "descriptor needs at least one weight");
  PartitionDescriptor d;
  d.shares.assign(weights.begin(), weights.end());
  for (double w : d.shares)
    NBWP_REQUIRE(w >= 0 && std::isfinite(w), "weights must be >= 0");
  d.normalize();
  return d;
}

const char* cost_objective_name(CostObjective objective) {
  switch (objective) {
    case CostObjective::kBalanced:
      return "balanced";
    case CostObjective::kCriticalPath:
      return "critical-path";
    case CostObjective::kGreedy:
      return "greedy";
    case CostObjective::kMinMaxWorkloads:
      return "minmax";
  }
  return "unknown";
}

CostObjective parse_cost_objective(const std::string& name) {
  for (CostObjective o :
       {CostObjective::kBalanced, CostObjective::kCriticalPath,
        CostObjective::kGreedy, CostObjective::kMinMaxWorkloads}) {
    if (name == cost_objective_name(o)) return o;
  }
  throw Error("unknown cost objective '" + name +
              "' (balanced | critical-path | greedy | minmax)");
}

double descriptor_cost(CostObjective objective,
                       const std::vector<double>& device_work_ns) {
  NBWP_REQUIRE(!device_work_ns.empty(), "empty device work vector");
  const auto [min_it, max_it] =
      std::minmax_element(device_work_ns.begin(), device_work_ns.end());
  double sum = 0;
  for (double w : device_work_ns) sum += w;
  const double mean = sum / static_cast<double>(device_work_ns.size());
  switch (objective) {
    case CostObjective::kBalanced:
      return *max_it - *min_it;
    case CostObjective::kCriticalPath:
      return *max_it;
    case CostObjective::kGreedy: {
      double overload = 0;
      for (double w : device_work_ns)
        if (w > mean) overload += w - mean;
      return overload;
    }
    case CostObjective::kMinMaxWorkloads:
      return mean > 0 ? *max_it / mean : 0.0;
  }
  return 0.0;
}

}  // namespace nbwp::core
