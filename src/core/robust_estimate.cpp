#include "core/robust_estimate.hpp"

namespace nbwp::core {

const char* fallback_stage_name(FallbackStage stage) {
  switch (stage) {
    case FallbackStage::kSampled:
      return "sampled";
    case FallbackStage::kRace:
      return "race";
    case FallbackStage::kNaiveStatic:
      return "naive_static";
    case FallbackStage::kDegraded:
      return "degraded";
  }
  return "unknown";
}

}  // namespace nbwp::core
