// Identification strategies for the framework's Identify step (Section II,
// Fig. 2 "identify the right value(s) of the threshold(s) for I_s").
//
// A strategy minimizes a scalar objective over a threshold interval using
// only evaluations of the (sampled) heterogeneous algorithm.  Each
// evaluation charges the virtual time of the run it stands for, so the
// framework's estimation overhead — the paper's "Overhead %" column — is
// accounted faithfully.
//
// The strategies in the paper are:
//  * coarse-to-fine grid (CC, Section III-A.2: steps of 8, then steps of 1),
//  * race-then-fine (spmm, Section IV-A.b: both devices multiply the whole
//    sample in parallel; the throughput ratio at first finish gives the
//    coarse split, then a fine local search),
//  * gradient descent (scale-free spmm, Section V-A.2).
// Golden-section search is provided as an ablation alternative.
#pragma once

#include <functional>
#include <string>

#include "util/error.hpp"

namespace nbwp::core {

/// One threshold evaluation: `objective_ns` is minimized; `cost_ns` is the
/// virtual time the evaluation takes (charged to the estimation overhead).
///
/// The three budget fields bound the search (0 disables each).  Limits are
/// checked before every *new* objective evaluation — memo hits are free —
/// so total wall time stays under `wall_deadline_ns` plus at most one
/// evaluation.  Virtual and evaluation-count budgets are deterministic;
/// the wall deadline is the only machine-dependent trigger (see
/// docs/ROBUSTNESS.md).  On exceeding any budget the search throws
/// IdentifyDeadlineExceeded for the caller's fallback chain
/// (core/robust_estimate.hpp).
struct Evaluator {
  std::function<double(double)> objective_ns;
  std::function<double(double)> cost_ns;
  double lo = 0.0;
  double hi = 100.0;
  double wall_deadline_ns = 0.0;    ///< wall-clock budget for the search
  double virtual_budget_ns = 0.0;   ///< cap on the charged estimation cost
  int max_evaluations = 0;          ///< cap on objective_ns runs
};

/// Thrown by the identify searches when an Evaluator budget is exhausted.
class IdentifyDeadlineExceeded : public Error {
 public:
  IdentifyDeadlineExceeded(const std::string& what, int evaluations,
                           double wall_elapsed_ns, double virtual_spent_ns)
      : Error(what),
        evaluations_(evaluations),
        wall_elapsed_ns_(wall_elapsed_ns),
        virtual_spent_ns_(virtual_spent_ns) {}

  int evaluations() const { return evaluations_; }
  double wall_elapsed_ns() const { return wall_elapsed_ns_; }
  double virtual_spent_ns() const { return virtual_spent_ns_; }

 private:
  int evaluations_;
  double wall_elapsed_ns_;
  double virtual_spent_ns_;
};

struct IdentifyResult {
  double best_threshold = 0.0;
  double best_objective = 0.0;
  double cost_ns = 0.0;
  int evaluations = 0;  ///< actual objective_ns runs (cache hits excluded)
  int cache_hits = 0;   ///< probes answered from the threshold memo
};

/// Grid at `coarse_step`, then a grid at `fine_step` inside the winning
/// coarse cell (the paper's CC procedure with steps 8 and 1).
IdentifyResult coarse_to_fine(const Evaluator& eval, double coarse_step = 8,
                              double fine_step = 1);

/// Flat grid at `step` over [lo, hi].
IdentifyResult flat_grid(const Evaluator& eval, double step = 1);

/// Race-based coarse estimate followed by a fine grid of half-width
/// `fine_halfwidth` at `fine_step`.  `cpu_all_ns` / `gpu_all_ns` are the
/// device times for the *whole* sampled input on each device; the race
/// costs min(cpu, gpu) because it stops when the first device finishes.
/// The coarse split is r0 = 100 * gpu/(cpu + gpu) (CPU work share).
IdentifyResult race_then_fine(const Evaluator& eval, double cpu_all_ns,
                              double gpu_all_ns, double fine_halfwidth = 8,
                              double fine_step = 1);

/// Hill-climbing gradient descent with a geometrically shrinking step,
/// optionally in log space (right for the HH row-density cutoff whose
/// useful range spans orders of magnitude).
struct GradientDescentOptions {
  double initial_step_fraction = 0.25;  ///< of the (log-)range
  double shrink = 0.5;
  int max_iterations = 24;
  bool log_space = false;
  int starts = 3;  ///< independent starting points (multi-start avoids the
                   ///< local minima of non-unimodal cutoff landscapes)
};
IdentifyResult gradient_descent(const Evaluator& eval,
                                GradientDescentOptions options = {});

/// Golden-section search (assumes a unimodal objective).
IdentifyResult golden_section(const Evaluator& eval, double tolerance = 0.5,
                              int max_iterations = 48);

/// Warm-started local refinement (serve/plan_cache.hpp): instead of a
/// cold search over the whole range, probe the cached threshold `t0`
/// itself plus a narrow symmetric bracket around it.  Linear brackets
/// probe t0 ± step, ± 2·step, … up to `halfwidth`; log-space brackets
/// (cutoff thresholds spanning orders of magnitude) probe
/// t0 · ratio^±i for i = 1..log_points.  Probes are clamped to
/// [lo, hi]; clamped duplicates cost nothing (per-search memo).
/// Because t0 is always probed, refining around a search's own optimum
/// can never return a worse objective than that search did.
struct WarmRefineOptions {
  double halfwidth = 4.0;  ///< linear bracket half-width
  double step = 1.0;       ///< linear probe spacing
  bool log_space = false;  ///< geometric bracket (needs lo > 0)
  double log_ratio = 1.5;  ///< geometric probe spacing
  int log_points = 3;      ///< probes per side of t0 in log space
};
IdentifyResult warm_refine(const Evaluator& eval, double t0,
                           WarmRefineOptions options = {});

}  // namespace nbwp::core
