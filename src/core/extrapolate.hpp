// Extrapolation strategies for the framework's third step (Section II).
//
// For the percentage thresholds of Algorithms 1 and 2 the identity map is
// right (Sections III-A.3 and IV-A.c: "we expect that t should be
// identical to t'").  The HH row-density cutoff changes scale under
// sampling, so richer maps are needed (Section V-A.3 uses an off-line
// best-fit; util/bestfit.hpp provides that machinery):
//
//  * fold_inversion — closed-form correction of the column-folding
//    collisions introduced by the Section V sampler: a full row of degree
//    d appears in an s-column sample with expected degree
//    E[d'] = s * (1 - (1 - 1/s)^d); inverting gives
//    d ~= -s * ln(1 - d'/s).  Exact for degrees well below s.
//  * work_share_extrapolator — map the heavy-row *work share* found to
//    balance the devices on the sample to the full input's degree
//    quantile; invariant under any monotone degree distortion, at the
//    price of one O(nnz) load-vector pass on the full input (the same
//    pass Algorithm 2's Phase I performs).
#pragma once

#include <algorithm>
#include <cmath>

#include "hetalg/hetero_spmm_hh.hpp"

namespace nbwp::core {

/// Invert the expected column-folding compression for a sample with
/// `sample_cols` columns.
inline double fold_inversion(double t_sample, double sample_cols) {
  const double s = sample_cols;
  if (t_sample >= s - 1) return s * 8;  // saturated: beyond recovery
  return -s * std::log1p(-t_sample / s);
}

/// Rich extrapolator for estimate_partition over HeteroSpmmHh.
inline double work_share_extrapolate(const hetalg::HeteroSpmmHh& full,
                                     const hetalg::HeteroSpmmHh& sample,
                                     double t_sample) {
  const double share = sample.work_share_above(t_sample);
  return full.threshold_for_work_share(share);
}

}  // namespace nbwp::core
