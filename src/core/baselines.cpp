#include "core/baselines.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace nbwp::core {

double naive_static_cpu_share_pct(const hetsim::Platform& platform) {
  return 100.0 - platform.naive_static_gpu_share_pct();
}

double naive_average_threshold(std::span<const double> optimal_thresholds) {
  return mean(optimal_thresholds);
}

double first_run_training_threshold(double cpu_work_ns, double gpu_work_ns,
                                    double trained_cpu_share_pct) {
  NBWP_REQUIRE(trained_cpu_share_pct > 0.0 && trained_cpu_share_pct < 100.0,
               "training share must be interior");
  if (cpu_work_ns <= 0 || gpu_work_ns <= 0) return trained_cpu_share_pct;
  // Observed per-share rates: cpu processed `trained` percent in cpu_ns,
  // gpu processed the rest in gpu_ns.  Balance them.
  const double cpu_rate = trained_cpu_share_pct / cpu_work_ns;
  const double gpu_rate = (100.0 - trained_cpu_share_pct) / gpu_work_ns;
  const double share = 100.0 * cpu_rate / (cpu_rate + gpu_rate);
  return std::clamp(share, 0.0, 100.0);
}

}  // namespace nbwp::core
