#include "obs/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace nbwp::obs {

Histogram::Histogram(HistogramMode mode) : mode_(mode) {
  if (mode_ == HistogramMode::kStreaming)
    stream_ = std::make_unique<StreamingHistogram>();
}

void Histogram::record(double sample) {
  if (stream_) {
    stream_->record(sample);
    return;
  }
  std::scoped_lock lock(mutex_);
  samples_.push_back(sample);
}

size_t Histogram::count() const {
  if (stream_) return stream_->count();
  std::scoped_lock lock(mutex_);
  return samples_.size();
}

HistogramSummary Histogram::summary() const {
  if (stream_) return stream_->summary();
  std::vector<double> xs;
  {
    std::scoped_lock lock(mutex_);
    xs = samples_;
  }
  HistogramSummary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  for (double x : xs) s.sum += x;
  s.mean = s.sum / static_cast<double>(xs.size());
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.p50 = percentile(xs, 50.0);
  s.p95 = percentile(xs, 95.0);
  s.p99 = percentile(xs, 99.0);
  return s;
}

HistogramSummary Histogram::window_summary() const {
  if (stream_) return stream_->window_summary();
  return summary();
}

std::vector<double> Histogram::samples() const {
  if (stream_) return {};
  std::scoped_lock lock(mutex_);
  return samples_;
}

size_t Histogram::memory_bytes() const {
  if (stream_) return sizeof(*this) + stream_->memory_bytes();
  std::scoped_lock lock(mutex_);
  return sizeof(*this) + samples_.capacity() * sizeof(double);
}

std::string labeled_name(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string out = name;
  out += '{';
  bool first = true;
  for (const Label& label : sorted) {
    if (!first) out += ',';
    first = false;
    for (char c : label.key) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out += ok ? c : '_';
    }
    out += "=\"";
    for (char c : label.value) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::scoped_lock lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = h->summary();
  return snap;
}

void Registry::clear() {
  std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

}  // namespace nbwp::obs
