#include "obs/metrics.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace nbwp::obs {

void Histogram::record(double sample) {
  std::scoped_lock lock(mutex_);
  samples_.push_back(sample);
}

size_t Histogram::count() const {
  std::scoped_lock lock(mutex_);
  return samples_.size();
}

HistogramSummary Histogram::summary() const {
  std::vector<double> xs;
  {
    std::scoped_lock lock(mutex_);
    xs = samples_;
  }
  HistogramSummary s;
  if (xs.empty()) return s;
  s.count = xs.size();
  for (double x : xs) s.sum += x;
  s.mean = s.sum / static_cast<double>(xs.size());
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.p50 = percentile(xs, 50.0);
  s.p95 = percentile(xs, 95.0);
  s.p99 = percentile(xs, 99.0);
  return s;
}

std::vector<double> Histogram::samples() const {
  std::scoped_lock lock(mutex_);
  return samples_;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::scoped_lock lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = h->summary();
  return snap;
}

void Registry::clear() {
  std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace nbwp::obs
