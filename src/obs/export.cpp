#include "obs/export.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strfmt.hpp"

namespace nbwp::obs {

namespace {

/// Shortest round-trippable representation that is always valid JSON
/// (never "nan"/"inf", which JSON forbids).
std::string json_num(double v) {
  if (v != v) return "null";
  if (v > 1e308 || v < -1e308) return "null";
  std::string s = strfmt("%.17g", v);
  // Prefer a compact form when it round-trips exactly.
  const std::string compact = strfmt("%.12g", v);
  if (std::stod(compact) == v) s = compact;
  return s;
}

std::string prom_name(const std::string& name) {
  std::string out = "nbwp_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  return out;
}

/// HELP docstrings escape backslash and newline per the text exposition
/// format.
std::string prom_help_text(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Label *values* additionally escape double quotes.  Values arriving
/// through labeled_name() are pre-escaped; this pass covers names built
/// by hand (tests, external snapshots) without double-escaping the
/// already-escaped sequences — so it only runs on the split-out raw
/// value below.
std::string prom_label_value(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// A metric key split into its family name and (possibly empty) label
/// block.  labeled_name() encodes `base{k="v",...}`; anything after the
/// first '{' is treated as the label block.
struct SeriesKey {
  std::string base;
  std::string labels;  ///< raw inner block without braces, may be empty
};

SeriesKey split_series(const std::string& key) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  std::string inner = key.substr(brace + 1);
  if (!inner.empty() && inner.back() == '}') inner.pop_back();
  return {key.substr(0, brace), inner};
}

/// Re-emit a label block, unescaping labeled_name()'s encoding and
/// re-escaping per the exposition format.  The block is a
/// comma-separated list of k="v" pairs where v may contain escaped
/// quotes.
std::string prom_labels(const std::string& inner,
                        const std::string& extra = "") {
  std::vector<std::pair<std::string, std::string>> pairs;
  size_t pos = 0;
  while (pos < inner.size()) {
    const auto eq = inner.find("=\"", pos);
    if (eq == std::string::npos) break;
    const std::string key = inner.substr(pos, eq - pos);
    size_t end = eq + 2;
    std::string value;
    while (end < inner.size()) {
      if (inner[end] == '\\' && end + 1 < inner.size()) {
        const char esc = inner[end + 1];
        value += esc == 'n' ? '\n' : esc;
        end += 2;
        continue;
      }
      if (inner[end] == '"') break;
      value += inner[end++];
    }
    pairs.emplace_back(key, value);
    pos = end + 1;
    if (pos < inner.size() && inner[pos] == ',') ++pos;
  }
  std::string out;
  for (const auto& [k, v] : pairs) {
    if (!out.empty()) out += ',';
    out += k + "=\"" + prom_label_value(v) + "\"";
  }
  if (!extra.empty()) {
    if (!out.empty()) out += ',';
    out += extra;
  }
  if (out.empty()) return "";
  return "{" + out + "}";
}

/// Group snapshot entries by family so one # HELP/# TYPE header covers
/// every labeled series of that family, as the exposition format
/// requires.
template <typename T>
std::map<std::string, std::vector<std::pair<SeriesKey, T>>> families_of(
    const std::map<std::string, T>& entries) {
  std::map<std::string, std::vector<std::pair<SeriesKey, T>>> families;
  for (const auto& [key, value] : entries) {
    SeriesKey series = split_series(key);
    families[series.base].emplace_back(std::move(series), value);
  }
  return families;
}

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << json_num(v);
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << json_num(v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name)
       << strfmt(":{\"count\":%zu,\"sum\":%s,\"min\":%s,\"max\":%s,"
                 "\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}",
                 h.count, json_num(h.sum).c_str(), json_num(h.min).c_str(),
                 json_num(h.max).c_str(), json_num(h.mean).c_str(),
                 json_num(h.p50).c_str(), json_num(h.p95).c_str(),
                 json_num(h.p99).c_str());
  }
  os << "}}";
}

void write_metrics_json_file(const std::string& path,
                             const MetricsSnapshot& snap) {
  std::ofstream f(path);
  NBWP_REQUIRE(f.good(), "cannot open metrics output " + path);
  write_metrics_json(f, snap);
}

namespace {

/// Labeled metric keys contain commas and quotes; RFC-4180-quote any
/// field that needs it so rows stay machine-parseable.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap) {
  os << "kind,name,stat,value\n";
  for (const auto& [name, v] : snap.counters)
    os << strfmt("counter,%s,value,%.17g\n", csv_field(name).c_str(), v);
  for (const auto& [name, v] : snap.gauges)
    os << strfmt("gauge,%s,value,%.17g\n", csv_field(name).c_str(), v);
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = csv_field(name);
    os << strfmt("histogram,%s,count,%zu\n", n.c_str(), h.count);
    os << strfmt("histogram,%s,sum,%.17g\n", n.c_str(), h.sum);
    os << strfmt("histogram,%s,min,%.17g\n", n.c_str(), h.min);
    os << strfmt("histogram,%s,max,%.17g\n", n.c_str(), h.max);
    os << strfmt("histogram,%s,mean,%.17g\n", n.c_str(), h.mean);
    os << strfmt("histogram,%s,p50,%.17g\n", n.c_str(), h.p50);
    os << strfmt("histogram,%s,p95,%.17g\n", n.c_str(), h.p95);
    os << strfmt("histogram,%s,p99,%.17g\n", n.c_str(), h.p99);
  }
}

void write_metrics_prometheus(std::ostream& os, const MetricsSnapshot& snap) {
  // Counters: one family per base name, `_total` suffix per the naming
  // conventions, HELP + TYPE once per family, labels re-escaped.
  for (const auto& [base, series] : families_of(snap.counters)) {
    const std::string n = prom_name(base) + "_total";
    os << "# HELP " << n << ' ' << prom_help_text(base) << " (counter)\n";
    os << "# TYPE " << n << " counter\n";
    for (const auto& [key, v] : series)
      os << strfmt("%s%s %.17g\n", n.c_str(),
                   prom_labels(key.labels).c_str(), v);
  }
  for (const auto& [base, series] : families_of(snap.gauges)) {
    const std::string n = prom_name(base);
    os << "# HELP " << n << ' ' << prom_help_text(base) << " (gauge)\n";
    os << "# TYPE " << n << " gauge\n";
    for (const auto& [key, v] : series)
      os << strfmt("%s%s %.17g\n", n.c_str(),
                   prom_labels(key.labels).c_str(), v);
  }
  for (const auto& [base, series] : families_of(snap.histograms)) {
    const std::string n = prom_name(base);
    os << "# HELP " << n << ' ' << prom_help_text(base) << " (summary)\n";
    os << "# TYPE " << n << " summary\n";
    for (const auto& [key, h] : series) {
      for (const auto& [q, v] :
           {std::pair{"0.5", h.p50}, {"0.95", h.p95}, {"0.99", h.p99}}) {
        os << strfmt(
            "%s%s %.17g\n", n.c_str(),
            prom_labels(key.labels,
                        std::string("quantile=\"") + q + "\"")
                .c_str(),
            v);
      }
      os << strfmt("%s_sum%s %.17g\n", n.c_str(),
                   prom_labels(key.labels).c_str(), h.sum);
      os << strfmt("%s_count%s %zu\n", n.c_str(),
                   prom_labels(key.labels).c_str(), h.count);
    }
  }
}

}  // namespace nbwp::obs
