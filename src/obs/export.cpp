#include "obs/export.hpp"

#include <fstream>
#include <ostream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strfmt.hpp"

namespace nbwp::obs {

namespace {

/// Shortest round-trippable representation that is always valid JSON
/// (never "nan"/"inf", which JSON forbids).
std::string json_num(double v) {
  if (v != v) return "null";
  if (v > 1e308 || v < -1e308) return "null";
  std::string s = strfmt("%.17g", v);
  // Prefer a compact form when it round-trips exactly.
  const std::string compact = strfmt("%.12g", v);
  if (std::stod(compact) == v) s = compact;
  return s;
}

std::string prom_name(const std::string& name) {
  std::string out = "nbwp_";
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  return out;
}

}  // namespace

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << json_num(v);
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name) << ':' << json_num(v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ',';
    first = false;
    os << json_quote(name)
       << strfmt(":{\"count\":%zu,\"sum\":%s,\"min\":%s,\"max\":%s,"
                 "\"mean\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}",
                 h.count, json_num(h.sum).c_str(), json_num(h.min).c_str(),
                 json_num(h.max).c_str(), json_num(h.mean).c_str(),
                 json_num(h.p50).c_str(), json_num(h.p95).c_str(),
                 json_num(h.p99).c_str());
  }
  os << "}}";
}

void write_metrics_json_file(const std::string& path,
                             const MetricsSnapshot& snap) {
  std::ofstream f(path);
  NBWP_REQUIRE(f.good(), "cannot open metrics output " + path);
  write_metrics_json(f, snap);
}

void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap) {
  os << "kind,name,stat,value\n";
  for (const auto& [name, v] : snap.counters)
    os << strfmt("counter,%s,value,%.17g\n", name.c_str(), v);
  for (const auto& [name, v] : snap.gauges)
    os << strfmt("gauge,%s,value,%.17g\n", name.c_str(), v);
  for (const auto& [name, h] : snap.histograms) {
    os << strfmt("histogram,%s,count,%zu\n", name.c_str(), h.count);
    os << strfmt("histogram,%s,sum,%.17g\n", name.c_str(), h.sum);
    os << strfmt("histogram,%s,min,%.17g\n", name.c_str(), h.min);
    os << strfmt("histogram,%s,max,%.17g\n", name.c_str(), h.max);
    os << strfmt("histogram,%s,mean,%.17g\n", name.c_str(), h.mean);
    os << strfmt("histogram,%s,p50,%.17g\n", name.c_str(), h.p50);
    os << strfmt("histogram,%s,p95,%.17g\n", name.c_str(), h.p95);
    os << strfmt("histogram,%s,p99,%.17g\n", name.c_str(), h.p99);
  }
}

void write_metrics_prometheus(std::ostream& os, const MetricsSnapshot& snap) {
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n";
    os << strfmt("%s %.17g\n", n.c_str(), v);
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n";
    os << strfmt("%s %.17g\n", n.c_str(), v);
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " summary\n";
    os << strfmt("%s{quantile=\"0.5\"} %.17g\n", n.c_str(), h.p50);
    os << strfmt("%s{quantile=\"0.95\"} %.17g\n", n.c_str(), h.p95);
    os << strfmt("%s{quantile=\"0.99\"} %.17g\n", n.c_str(), h.p99);
    os << strfmt("%s_sum %.17g\n", n.c_str(), h.sum);
    os << strfmt("%s_count %zu\n", n.c_str(), h.count);
  }
}

}  // namespace nbwp::obs
