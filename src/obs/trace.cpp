#include "obs/trace.hpp"

#include <fstream>
#include <ostream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strfmt.hpp"

namespace nbwp::obs {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

double Tracer::now_us() const {
  const auto dt = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(dt).count();
}

void Tracer::record(std::string name, double ts_us, double dur_us) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.tid = current_thread_tid();
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  std::scoped_lock lock(mutex_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::scoped_lock lock(mutex_);
  events_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

void Tracer::write_chrome_trace(std::ostream& os,
                                const std::string& process_name) const {
  const auto evs = events();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& ev : evs) {
    if (!first) os << ',';
    first = false;
    os << strfmt(
        "{\"name\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f}",
        json_quote(ev.name).c_str(), ev.tid, ev.ts_us, ev.dur_us);
  }
  os << strfmt(
      "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"process\":%s,"
      "\"clock\":\"wall\"}}",
      json_quote(process_name).c_str());
}

void Tracer::write_chrome_trace_file(const std::string& path,
                                     const std::string& process_name) const {
  std::ofstream f(path);
  NBWP_REQUIRE(f.good(), "cannot open trace output " + path);
  write_chrome_trace(f, process_name);
}

int current_thread_tid() {
  static std::atomic<int> next{0};
  thread_local int tid = next.fetch_add(1);
  return tid;
}

void set_trace_enabled(bool on) { Tracer::global().set_enabled(on); }

}  // namespace nbwp::obs
