#include "obs/request_trace.hpp"

#include <atomic>
#include <fstream>
#include <ostream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strfmt.hpp"

namespace nbwp::obs {

namespace {

thread_local TraceContext* t_current_trace = nullptr;

uint64_t next_request_id() {
  static std::atomic<uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

TraceContext::TraceContext(std::string label)
    : active_(metrics_enabled() || trace_enabled()) {
  if (!active_) return;
  trace_.id = next_request_id();
  trace_.label = std::move(label);
  start_us_ = Tracer::global().now_us();
  trace_.start_ms = start_us_ / 1e3;
}

TraceContext::~TraceContext() { finish(); }

void TraceContext::set_class(std::string request_class) {
  if (!active_) return;
  std::scoped_lock lock(mutex_);
  trace_.request_class = std::move(request_class);
}

void TraceContext::set_fault(bool fault) {
  if (!active_) return;
  std::scoped_lock lock(mutex_);
  trace_.fault = fault;
}

void TraceContext::add_stage(const char* stage, double start_us,
                             double dur_us) {
  if (!active_) return;
  std::scoped_lock lock(mutex_);
  if (finished_) return;
  trace_.stages.push_back({stage, start_us / 1e3, dur_us / 1e3});
}

double TraceContext::elapsed_ms() const {
  if (!active_) return 0;
  return (Tracer::global().now_us() - start_us_) / 1e3;
}

void TraceContext::finish() {
  if (!active_) return;
  RequestTrace done;
  {
    std::scoped_lock lock(mutex_);
    if (finished_) return;
    finished_ = true;
    trace_.total_ms = (Tracer::global().now_us() - start_us_) / 1e3;
    done = std::move(trace_);
  }
  if (trace_enabled())
    Tracer::global().record("serve.request", start_us_, done.total_ms * 1e3);
  FlightRecorder::global().add(std::move(done));
}

TraceContext* TraceContext::current() { return t_current_trace; }

TraceContext::Scope::Scope(TraceContext& context)
    : previous_(t_current_trace) {
  if (context.active()) {
    t_current_trace = &context;
    installed_ = true;
  }
}

TraceContext::Scope::~Scope() {
  if (installed_) t_current_trace = previous_;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::configure(Options options) {
  std::scoped_lock lock(mutex_);
  options_ = std::move(options);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

FlightRecorder::Options FlightRecorder::options() const {
  std::scoped_lock lock(mutex_);
  return options_;
}

void FlightRecorder::add(RequestTrace trace) {
  bool dump = false;
  std::string dump_path;
  {
    std::scoped_lock lock(mutex_);
    if (options_.capacity == 0) return;
    trace.breach = options_.latency_threshold_ms > 0 &&
                   trace.total_ms > options_.latency_threshold_ms;
    dump = (trace.fault || trace.breach) && !options_.dump_path.empty();
    dump_path = options_.dump_path;
    if (trace.breach) count("flight.breaches");
    if (trace.fault) count("flight.faults");
    count("flight.recorded");
    ++recorded_;
    if (ring_.size() < options_.capacity) {
      ring_.push_back(std::move(trace));
    } else {
      ring_[next_] = std::move(trace);
      next_ = (next_ + 1) % ring_.size();
    }
  }
  // Outside the lock: write_json re-acquires it.
  if (dump) {
    write_json_file(dump_path);
    count("flight.dumps");
  }
}

std::vector<RequestTrace> FlightRecorder::recent() const {
  std::scoped_lock lock(mutex_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  return out;
}

uint64_t FlightRecorder::recorded() const {
  std::scoped_lock lock(mutex_);
  return recorded_;
}

uint64_t FlightRecorder::dropped() const {
  std::scoped_lock lock(mutex_);
  return recorded_ - ring_.size();
}

void FlightRecorder::clear() {
  std::scoped_lock lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

void FlightRecorder::write_json(std::ostream& os) const {
  const std::vector<RequestTrace> requests = recent();
  Options opts;
  uint64_t total = 0;
  {
    std::scoped_lock lock(mutex_);
    opts = options_;
    total = recorded_;
  }
  os << strfmt("{\"capacity\":%zu,\"recorded\":%llu,\"dropped\":%llu,"
               "\"latency_threshold_ms\":%.17g,\"requests\":[",
               opts.capacity, static_cast<unsigned long long>(total),
               static_cast<unsigned long long>(total - requests.size()),
               opts.latency_threshold_ms);
  bool first = true;
  for (const RequestTrace& r : requests) {
    if (!first) os << ',';
    first = false;
    os << strfmt("{\"id\":%llu,\"label\":%s,\"class\":%s,"
                 "\"start_ms\":%.3f,\"total_ms\":%.3f,"
                 "\"fault\":%s,\"breach\":%s,\"stages\":[",
                 static_cast<unsigned long long>(r.id),
                 json_quote(r.label).c_str(),
                 json_quote(r.request_class).c_str(), r.start_ms,
                 r.total_ms, r.fault ? "true" : "false",
                 r.breach ? "true" : "false");
    bool first_stage = true;
    for (const StageTiming& s : r.stages) {
      if (!first_stage) os << ',';
      first_stage = false;
      os << strfmt("{\"stage\":%s,\"start_ms\":%.3f,\"dur_ms\":%.3f}",
                   json_quote(s.stage).c_str(), s.start_ms, s.dur_ms);
    }
    os << "]}";
  }
  os << "]}";
}

void FlightRecorder::write_json_file(const std::string& path) const {
  std::ofstream f(path);
  NBWP_REQUIRE(f.good(), "cannot open flight-recorder output " + path);
  write_json(f);
}

}  // namespace nbwp::obs
