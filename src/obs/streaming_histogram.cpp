#include "obs/streaming_histogram.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "obs/metrics.hpp"

namespace nbwp::obs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void StreamingHistogram::Slice::add(int bucket, double sample) {
  buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  count.fetch_add(1, std::memory_order_relaxed);
  sum.fetch_add(sample, std::memory_order_relaxed);
  atomic_min(min, sample);
  atomic_max(max, sample);
}

void StreamingHistogram::Slice::reset(double now_s) {
  for (auto& b : buckets) b.store(0, std::memory_order_relaxed);
  count.store(0, std::memory_order_relaxed);
  sum.store(0.0, std::memory_order_relaxed);
  min.store(kInf, std::memory_order_relaxed);
  max.store(-kInf, std::memory_order_relaxed);
  start_s.store(now_s, std::memory_order_relaxed);
}

StreamingHistogram::StreamingHistogram(Options options,
                                       std::function<double()> clock)
    : options_(options),
      clock_(clock ? std::move(clock) : steady_seconds) {
  options_.slices = std::max(1, options_.slices);
  options_.slice_seconds = std::max(1e-6, options_.slice_seconds);
  const double now = clock_();
  total_.reset(now);
  slices_.reserve(static_cast<size_t>(options_.slices));
  for (int i = 0; i < options_.slices; ++i) {
    slices_.push_back(std::make_unique<Slice>());
    // Only slice 0 starts live; the others report an ancient start so an
    // early window_summary() does not count never-used slices as fresh.
    slices_.back()->reset(i == 0 ? now : -kInf);
  }
  slice_expiry_s_.store(now + options_.slice_seconds,
                        std::memory_order_relaxed);
}

int StreamingHistogram::bucket_of(double sample) {
  if (!(sample > 0)) return 0;  // zero, negative, NaN clamp low
  const double idx = std::floor(std::log2(sample) * kSubBucketsPerOctave) -
                     static_cast<double>(kMinExponent * kSubBucketsPerOctave);
  if (idx < 0) return 0;
  if (idx >= kBucketCount) return kBucketCount - 1;
  return static_cast<int>(idx);
}

double StreamingHistogram::bucket_value(int bucket) {
  return std::exp2((bucket + 0.5) / kSubBucketsPerOctave + kMinExponent);
}

void StreamingHistogram::rotate(double now_s) {
  std::scoped_lock lock(rotate_mutex_);
  double expiry = slice_expiry_s_.load(std::memory_order_relaxed);
  if (now_s < expiry) return;  // another thread already rotated
  const double window =
      options_.slice_seconds * static_cast<double>(options_.slices);
  size_t cur = current_.load(std::memory_order_relaxed);
  if (now_s - expiry > window) {
    // Idle longer than the whole window: every slice is stale.
    for (auto& slice : slices_) slice->reset(-kInf);
    cur = 0;
    slices_[0]->reset(now_s);
    expiry = now_s + options_.slice_seconds;
  } else {
    while (expiry <= now_s) {
      cur = (cur + 1) % slices_.size();
      slices_[cur]->reset(expiry);
      expiry += options_.slice_seconds;
    }
  }
  current_.store(cur, std::memory_order_release);
  slice_expiry_s_.store(expiry, std::memory_order_relaxed);
}

void StreamingHistogram::record(double sample) {
  const double now = clock_();
  if (now >= slice_expiry_s_.load(std::memory_order_relaxed)) rotate(now);
  const int bucket = bucket_of(sample);
  total_.add(bucket, sample);
  slices_[current_.load(std::memory_order_acquire)]->add(bucket, sample);
}

size_t StreamingHistogram::count() const {
  return total_.count.load(std::memory_order_relaxed);
}

HistogramSummary StreamingHistogram::summarize_slices(
    const std::vector<const Slice*>& parts) const {
  HistogramSummary s;
  std::vector<uint64_t> merged(kBucketCount, 0);
  double min = kInf, max = -kInf;
  for (const Slice* part : parts) {
    const uint64_t n = part->count.load(std::memory_order_relaxed);
    if (n == 0) continue;
    s.count += n;
    s.sum += part->sum.load(std::memory_order_relaxed);
    min = std::min(min, part->min.load(std::memory_order_relaxed));
    max = std::max(max, part->max.load(std::memory_order_relaxed));
    for (int b = 0; b < kBucketCount; ++b)
      merged[b] += part->buckets[b].load(std::memory_order_relaxed);
  }
  if (s.count == 0) return s;
  s.min = min;
  s.max = max;
  s.mean = s.sum / static_cast<double>(s.count);
  auto percentile = [&](double p) {
    const double target =
        p / 100.0 * static_cast<double>(s.count - 1);
    uint64_t cum = 0;
    for (int b = 0; b < kBucketCount; ++b) {
      cum += merged[b];
      if (static_cast<double>(cum) > target)
        return std::clamp(bucket_value(b), min, max);
    }
    return max;
  };
  s.p50 = percentile(50.0);
  s.p95 = percentile(95.0);
  s.p99 = percentile(99.0);
  return s;
}

HistogramSummary StreamingHistogram::summary() const {
  return summarize_slices({&total_});
}

HistogramSummary StreamingHistogram::window_summary() const {
  const double now = clock_();
  const double window =
      options_.slice_seconds * static_cast<double>(options_.slices);
  std::vector<const Slice*> live;
  for (const auto& slice : slices_) {
    const double start = slice->start_s.load(std::memory_order_relaxed);
    if (now - start <= window) live.push_back(slice.get());
  }
  HistogramSummary s = summarize_slices(live);
  if (s.count == 0) return summary();
  return s;
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  const uint64_t n = other.total_.count.load(std::memory_order_relaxed);
  if (n == 0) return;
  for (int b = 0; b < kBucketCount; ++b) {
    const uint64_t c =
        other.total_.buckets[b].load(std::memory_order_relaxed);
    if (c) total_.buckets[b].fetch_add(c, std::memory_order_relaxed);
  }
  total_.count.fetch_add(n, std::memory_order_relaxed);
  total_.sum.fetch_add(other.total_.sum.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  atomic_min(total_.min, other.total_.min.load(std::memory_order_relaxed));
  atomic_max(total_.max, other.total_.max.load(std::memory_order_relaxed));
}

void StreamingHistogram::set_clock_for_test(std::function<double()> clock) {
  std::scoped_lock lock(rotate_mutex_);
  clock_ = clock ? std::move(clock) : steady_seconds;
  const double now = clock_();
  for (size_t i = 0; i < slices_.size(); ++i)
    slices_[i]->reset(i == 0 ? now : -kInf);
  current_.store(0, std::memory_order_release);
  slice_expiry_s_.store(now + options_.slice_seconds,
                        std::memory_order_relaxed);
}

size_t StreamingHistogram::memory_bytes() const {
  const size_t per_slice = sizeof(Slice) + kBucketCount * sizeof(uint64_t);
  return sizeof(*this) + (slices_.size() + 1) * per_slice;
}

}  // namespace nbwp::obs
