// Fixed-memory streaming histograms (HDR-style log bucketing).
//
// The exact-sample obs::Histogram keeps every recorded value, which is
// fine for short experiment runs and hopeless for serving traffic: one
// million requests through `serve.request_ms` would hold one million
// doubles per metric.  StreamingHistogram bounds memory by construction:
// samples land in geometrically spaced buckets (16 per power of two, so
// a reported percentile is within ~2.2 % of the bucketed order statistic
// and within one bucket width — relative_error() — of the exact value),
// and the bucket array size never depends on the sample count.
//
// Two views are maintained concurrently:
//
//   * a cumulative histogram over the instance's lifetime (summary());
//   * a sliding time window of `slices` sub-histograms, each covering
//     `slice_seconds` of wall clock (window_summary()).  record() lands
//     in the current slice; slices older than the window are recycled
//     in place, so a long run always answers "what were the percentiles
//     over the last slices x slice_seconds" — the signal SloMonitor
//     evaluates burn rates against.
//
// All mutation is lock-free in the common case (relaxed atomics per
// bucket; min/max via CAS); only slice rotation takes a mutex, at most
// once per slice_seconds.  merge() folds another instance's cumulative
// counts in, so sharded or per-thread histograms can be combined.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace nbwp::obs {

struct HistogramSummary;  // metrics.hpp

class StreamingHistogram {
 public:
  /// Geometric bucketing: 16 sub-buckets per power of two covering
  /// [2^-20, 2^40) ~ [9.5e-7, 1.1e12).  Values outside clamp into the
  /// first/last bucket; zero, negative and NaN samples clamp low.
  static constexpr int kSubBucketsPerOctave = 16;
  static constexpr int kMinExponent = -20;
  static constexpr int kMaxExponent = 40;
  static constexpr int kBucketCount =
      (kMaxExponent - kMinExponent) * kSubBucketsPerOctave;

  struct Options {
    int slices = 8;              ///< sub-histograms in the sliding window
    double slice_seconds = 0.5;  ///< wall-clock span of one slice
  };

  /// `clock` returns seconds since an arbitrary epoch; the default reads
  /// std::chrono::steady_clock.  Tests inject a fake clock to drive
  /// slice rotation deterministically.  (Two overloads rather than a
  /// defaulted Options argument: GCC rejects `= {}` for a nested
  /// aggregate with member initializers inside the enclosing class.)
  StreamingHistogram() : StreamingHistogram(Options{}) {}
  explicit StreamingHistogram(Options options,
                              std::function<double()> clock = {});

  void record(double sample);

  size_t count() const;

  /// Cumulative lifetime summary.  count/sum/min/max are exact;
  /// percentiles are bucket midpoints (see relative_error()).
  HistogramSummary summary() const;

  /// Summary over the sliding window (the last slices x slice_seconds).
  /// Falls back to the cumulative summary when the window is empty, so a
  /// just-finished run still evaluates.
  HistogramSummary window_summary() const;

  /// Fold `other`'s cumulative counts into this instance (windows are
  /// not merged — merge combines lifetime views across shards).
  void merge(const StreamingHistogram& other);

  /// Worst-case relative error of a reported percentile vs the bucketed
  /// order statistic: half a bucket in log space, ~2.2 %.  Against the
  /// exact interpolated percentile the bound is one full bucket width
  /// (~4.4 %).
  static double relative_error() {
    return std::exp2(0.5 / kSubBucketsPerOctave) - 1.0;
  }

  /// Fixed footprint in bytes, independent of how many samples were
  /// recorded — the memory-bound claim tests pin.
  size_t memory_bytes() const;

  const Options& options() const { return options_; }

  /// Swap in a fake clock mid-life (tests only): resets every slice and
  /// the expiry to the new clock's "now", so rotation behaves as if the
  /// instance had been constructed with this clock.  Not thread-safe
  /// against concurrent record()s.
  void set_clock_for_test(std::function<double()> clock);

 private:
  struct Slice {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
    std::atomic<double> start_s{0.0};  ///< when this slice became current

    Slice() : buckets(kBucketCount) {}
    void add(int bucket, double sample);
    void reset(double now_s);
  };

  static int bucket_of(double sample);
  static double bucket_value(int bucket);

  void rotate(double now_s);
  HistogramSummary summarize_slices(
      const std::vector<const Slice*>& parts) const;

  Options options_;
  std::function<double()> clock_;
  Slice total_;
  std::vector<std::unique_ptr<Slice>> slices_;
  std::atomic<size_t> current_{0};
  std::atomic<double> slice_expiry_s_;
  std::mutex rotate_mutex_;
};

}  // namespace nbwp::obs
