#include "obs/manifest.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/export.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strfmt.hpp"

namespace nbwp::obs {

namespace {

std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::string cpu_model_name() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    return trimmed(line.substr(colon + 1));
  }
  return "";
}

}  // namespace

std::map<std::string, std::string> collect_provenance() {
  std::map<std::string, std::string> out;
  if (const char* sha = std::getenv("NBWP_GIT_SHA"); sha && *sha)
    out["git_sha"] = sha;
  char host[256] = {};
  if (gethostname(host, sizeof(host) - 1) == 0 && host[0])
    out["hostname"] = host;
  if (const std::string cpu = cpu_model_name(); !cpu.empty())
    out["cpu_model"] = cpu;
  return out;
}

void write_manifest_json(std::ostream& os, const RunManifest& manifest) {
  os << "{\"tool\":" << json_quote(manifest.tool)
     << ",\"command\":" << json_quote(manifest.command) << ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : manifest.config) {
    if (!first) os << ',';
    first = false;
    os << json_quote(k) << ':' << json_quote(v);
  }
  os << "},\"outputs\":{";
  first = true;
  for (const auto& [k, v] : manifest.outputs) {
    if (!first) os << ',';
    first = false;
    os << json_quote(k) << ':' << json_quote(v);
  }
  const auto provenance = manifest.provenance.empty()
                              ? collect_provenance()
                              : manifest.provenance;
  os << "},\"provenance\":{";
  first = true;
  for (const auto& [k, v] : provenance) {
    if (!first) os << ',';
    first = false;
    os << json_quote(k) << ':' << json_quote(v);
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto secs =
      std::chrono::duration_cast<std::chrono::seconds>(now).count();
  os << strfmt("},\"written_at_unix\":%lld,\"metrics\":",
               static_cast<long long>(secs));
  write_metrics_json(os, manifest.metrics);
  os << "}";
}

void write_manifest_file(const std::string& path,
                         const RunManifest& manifest) {
  std::ofstream f(path);
  NBWP_REQUIRE(f.good(), "cannot open manifest output " + path);
  write_manifest_json(f, manifest);
}

std::string manifest_path_for(const std::string& output_path) {
  return output_path + ".manifest.json";
}

}  // namespace nbwp::obs
