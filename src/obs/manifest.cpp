#include "obs/manifest.hpp"

#include <chrono>
#include <fstream>
#include <ostream>

#include "obs/export.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strfmt.hpp"

namespace nbwp::obs {

void write_manifest_json(std::ostream& os, const RunManifest& manifest) {
  os << "{\"tool\":" << json_quote(manifest.tool)
     << ",\"command\":" << json_quote(manifest.command) << ",\"config\":{";
  bool first = true;
  for (const auto& [k, v] : manifest.config) {
    if (!first) os << ',';
    first = false;
    os << json_quote(k) << ':' << json_quote(v);
  }
  os << "},\"outputs\":{";
  first = true;
  for (const auto& [k, v] : manifest.outputs) {
    if (!first) os << ',';
    first = false;
    os << json_quote(k) << ':' << json_quote(v);
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto secs =
      std::chrono::duration_cast<std::chrono::seconds>(now).count();
  os << strfmt("},\"written_at_unix\":%lld,\"metrics\":",
               static_cast<long long>(secs));
  write_metrics_json(os, manifest.metrics);
  os << "}";
}

void write_manifest_file(const std::string& path,
                         const RunManifest& manifest) {
  std::ofstream f(path);
  NBWP_REQUIRE(f.good(), "cannot open manifest output " + path);
  write_manifest_json(f, manifest);
}

std::string manifest_path_for(const std::string& output_path) {
  return output_path + ".manifest.json";
}

}  // namespace nbwp::obs
