// Request-scoped tracing: TraceContext + the FlightRecorder ring.
//
// A TraceContext follows one plan-service request through its lifetime:
// it gets a process-unique id, collects per-stage wall-clock timings
// (every obs::Span that closes while the context is installed via
// TraceContext::Scope appends a stage — so the existing estimate.* /
// serve.* spans attribute identify, warm refinement and cache work to
// the request without new plumbing), and on finish() hands the completed
// RequestTrace to the global FlightRecorder and, when tracing is on, a
// "serve.request" event to the Perfetto tracer.
//
// The FlightRecorder is a bounded in-memory ring of the last N finished
// requests — the thing you dump when production latency goes sideways
// and the histograms only tell you *that* p99 moved, not *which*
// requests moved it.  Dumps happen on demand (nbwp_cli
// --flight-recorder, serve_throughput --flight-recorder), and
// automatically when a request finishes degraded (fault) or over the
// configured latency threshold (breach) and a dump path is configured.
//
// Everything is inert — no allocation, no locks — unless metrics or
// tracing is enabled when the TraceContext is constructed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace nbwp::obs {

struct StageTiming {
  std::string stage;   ///< span name, e.g. "serve.lookup"
  double start_ms = 0;  ///< ms since the tracer epoch
  double dur_ms = 0;
};

/// One finished request, as kept by the FlightRecorder.
struct RequestTrace {
  uint64_t id = 0;
  std::string label;          ///< caller request id, e.g. "cc:pwtk:0"
  std::string request_class;  ///< exact | near | miss | degraded | coalesced
  double start_ms = 0;        ///< ms since the tracer epoch
  double total_ms = 0;
  bool fault = false;   ///< finished on a fallback/degraded path
  bool breach = false;  ///< total_ms exceeded the recorder's threshold
  std::vector<StageTiming> stages;
};

class TraceContext {
 public:
  /// Active only when metrics or tracing is enabled at construction;
  /// inactive contexts cost a branch per call.
  explicit TraceContext(std::string label);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  bool active() const { return active_; }
  void set_class(std::string request_class);
  void set_fault(bool fault);
  void add_stage(const char* stage, double start_us, double dur_us);
  double elapsed_ms() const;

  /// Seal the trace: stamp the total, emit the Perfetto event, hand the
  /// record to FlightRecorder::global().  Idempotent; the destructor
  /// calls it.
  void finish();

  /// The context installed on this thread (nullptr outside any Scope).
  /// obs::Span reports closed spans here.
  static TraceContext* current();

  /// Installs a context as the thread's current for the scope's
  /// lifetime; nests (restores the previous context on destruction).
  class Scope {
   public:
    explicit Scope(TraceContext& context);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TraceContext* previous_;
    bool installed_ = false;
  };

 private:
  bool active_ = false;
  bool finished_ = false;
  double start_us_ = 0;
  std::mutex mutex_;
  RequestTrace trace_;
};

/// Bounded ring of the last N finished requests.
class FlightRecorder {
 public:
  struct Options {
    size_t capacity = 256;
    /// Requests slower than this are flagged `breach` (0 = never).
    double latency_threshold_ms = 0;
    /// When set, a fault or breach dumps the ring here immediately
    /// (overwritten per dump — the file always holds the freshest
    /// evidence).
    std::string dump_path;
  };

  static FlightRecorder& global();

  /// Replaces the options and clears the ring.
  void configure(Options options);
  Options options() const;

  void add(RequestTrace trace);

  std::vector<RequestTrace> recent() const;  ///< oldest first
  uint64_t recorded() const;  ///< total adds over the recorder lifetime
  uint64_t dropped() const;   ///< adds that fell off the ring
  void clear();

  /// {"capacity":..,"recorded":..,"dropped":..,"requests":[...]} — the
  /// dump format documented in docs/OBSERVABILITY.md.
  void write_json(std::ostream& os) const;
  void write_json_file(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  Options options_;
  std::vector<RequestTrace> ring_;
  size_t next_ = 0;  ///< overwrite position once the ring is full
  uint64_t recorded_ = 0;
};

}  // namespace nbwp::obs
