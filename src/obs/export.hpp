// Metric snapshot exporters: JSON (machine consumption, --metrics), CSV
// (spreadsheet joins against bench CSVs), and Prometheus text exposition
// (scrape-style integration).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace nbwp::obs {

/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,
/// max,mean,p50,p95,p99}}}
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap);
void write_metrics_json_file(const std::string& path,
                             const MetricsSnapshot& snap);

/// One row per metric: kind,name,stat,value.
void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap);

/// Prometheus text format; dots in names become underscores, histogram
/// summaries become <name>{quantile="..."} gauges plus _count/_sum.
void write_metrics_prometheus(std::ostream& os, const MetricsSnapshot& snap);

}  // namespace nbwp::obs
