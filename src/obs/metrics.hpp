// Real-time (wall-clock) observability: a process-wide metrics registry.
//
// The hetsim layer accounts *virtual* time — what the simulated platform
// would take.  This module answers the complementary question: where does
// the reproduction itself spend wall-clock time and work?  Counters count
// events (threshold evaluations, pool jobs), gauges hold last-written
// values (utilization), histograms summarize samples as p50/p95/p99
// (span durations, request latencies).
//
// Histograms default to the fixed-memory streaming backend
// (obs/streaming_histogram.hpp): million-request serving runs keep O(1)
// memory per metric and additionally expose a sliding-window summary for
// SLO evaluation.  The exact-sample backend survives behind
// HistogramMode::kExact for tests that need bit-exact percentile parity
// with util/stats.
//
// Metrics can carry labels (e.g. `serve.requests{class="exact"}`): a
// label set is folded into the metric key with
// labeled_name(), so every exporter splits series by label without new
// storage machinery, and the Prometheus exporter re-emits them as real
// labels.
//
// Collection is off by default and guarded by one relaxed atomic load, so
// instrumented hot paths cost nothing measurable until someone opts in
// with --metrics / --trace-real (or set_metrics_enabled in code).  All
// types are safe to use concurrently from ThreadPool workers; metric
// handles returned by the registry stay valid until the registry is
// clear()ed (obs/span.hpp HistogramHandle re-resolves across clears).
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/streaming_histogram.hpp"

namespace nbwp::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

/// Global collection switch.  Instrumentation sites check this before
/// touching the registry; when false they reduce to one relaxed load.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonically increasing sum (C++20 atomic<double> fetch_add).
class Counter {
 public:
  void add(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-written value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSummary {
  size_t count = 0;
  double sum = 0, min = 0, max = 0, mean = 0;
  double p50 = 0, p95 = 0, p99 = 0;
};

/// Which backend a Histogram uses.
enum class HistogramMode {
  kStreaming,  ///< fixed-memory log buckets + sliding window (default)
  kExact,      ///< every raw sample kept; util/stats percentile parity
};

namespace detail {
inline std::atomic<HistogramMode> g_histogram_mode{
    HistogramMode::kStreaming};
}  // namespace detail

/// Backend newly created registry histograms use.  Tests that assert
/// exact percentile arithmetic switch to kExact (and restore).
inline HistogramMode default_histogram_mode() {
  return detail::g_histogram_mode.load(std::memory_order_relaxed);
}
inline void set_default_histogram_mode(HistogramMode mode) {
  detail::g_histogram_mode.store(mode, std::memory_order_relaxed);
}

/// Latency/size distribution.  The streaming backend is bounded-memory
/// and additionally answers window_summary() over the recent sliding
/// window; the exact backend keeps raw samples (short runs, tests).
class Histogram {
 public:
  Histogram() : Histogram(default_histogram_mode()) {}
  explicit Histogram(HistogramMode mode);

  void record(double sample);
  size_t count() const;
  HistogramSummary summary() const;
  /// Streaming: summary over the sliding window (cumulative fallback
  /// when the window is empty).  Exact: same as summary().
  HistogramSummary window_summary() const;
  std::vector<double> samples() const;  ///< exact mode only; else empty
  HistogramMode mode() const { return mode_; }
  /// Current footprint: fixed for streaming, grows with samples (exact).
  size_t memory_bytes() const;
  /// The streaming backend, for tests that drive slice rotation with a
  /// fake clock (StreamingHistogram::set_clock_for_test).  nullptr in
  /// exact mode.
  StreamingHistogram* stream_for_test() { return stream_.get(); }

 private:
  HistogramMode mode_;
  std::unique_ptr<StreamingHistogram> stream_;  ///< streaming mode
  mutable std::mutex mutex_;                    ///< exact mode
  std::vector<double> samples_;
};

/// One metric label.  Keys are sanitized to [A-Za-z0-9_]; values are
/// escaped (backslash, quote, newline) when folded into the metric key,
/// which makes the encoded form directly reusable by the Prometheus
/// exporter.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// `name{k1="v1",k2="v2"}` with labels sorted by key; empty labels
/// return `name` unchanged.  This is the registry key for a labeled
/// series.
std::string labeled_name(const std::string& name, const Labels& labels);

/// Everything the exporters need, decoupled from live metric objects.
/// Labeled series appear under their encoded labeled_name().
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Name -> metric map.  Lookup takes a mutex; hold the returned reference
/// (or an obs/span.hpp HistogramHandle) when instrumenting a hot loop.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  Counter& counter(const std::string& name, const Labels& labels) {
    return counter(labeled_name(name, labels));
  }
  Gauge& gauge(const std::string& name, const Labels& labels) {
    return gauge(labeled_name(name, labels));
  }
  Histogram& histogram(const std::string& name, const Labels& labels) {
    return histogram(labeled_name(name, labels));
  }

  /// Read-only lookups (SLO evaluation): nullptr when the metric was
  /// never recorded.  Pass the encoded labeled_name() for labeled
  /// series.
  const Counter* find_counter(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  MetricsSnapshot snapshot() const;

  /// Drop every registered metric (tests; between CLI subcommands).
  /// Bumps generation() so cached handles re-resolve instead of
  /// dangling.
  void clear();

  /// Incremented by clear(); obs/span.hpp HistogramHandle compares this
  /// to decide whether its cached pointer is still valid.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  mutable std::mutex mutex_;
  std::atomic<uint64_t> generation_{0};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One-shot helpers for call sites that fire at most a few times per
/// phase: no-ops (single relaxed load) while collection is disabled.
inline void count(const std::string& name, double delta = 1.0) {
  if (metrics_enabled()) Registry::global().counter(name).add(delta);
}
inline void count(const std::string& name, const Labels& labels,
                  double delta = 1.0) {
  if (metrics_enabled())
    Registry::global().counter(name, labels).add(delta);
}
inline void set_gauge(const std::string& name, double value) {
  if (metrics_enabled()) Registry::global().gauge(name).set(value);
}
inline void observe(const std::string& name, double sample) {
  if (metrics_enabled()) Registry::global().histogram(name).record(sample);
}
inline void observe(const std::string& name, const Labels& labels,
                    double sample) {
  if (metrics_enabled())
    Registry::global().histogram(name, labels).record(sample);
}

}  // namespace nbwp::obs
