// Real-time (wall-clock) observability: a process-wide metrics registry.
//
// The hetsim layer accounts *virtual* time — what the simulated platform
// would take.  This module answers the complementary question: where does
// the reproduction itself spend wall-clock time and work?  Counters count
// events (threshold evaluations, pool jobs), gauges hold last-written
// values (utilization), histograms keep raw samples and summarize them as
// p50/p95/p99 (span durations).
//
// Collection is off by default and guarded by one relaxed atomic load, so
// instrumented hot paths cost nothing measurable until someone opts in
// with --metrics / --trace-real (or set_metrics_enabled in code).  All
// types are safe to use concurrently from ThreadPool workers; metric
// handles returned by the registry stay valid for the registry's
// lifetime.
#pragma once

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nbwp::obs {

namespace detail {
inline std::atomic<bool> g_metrics_enabled{false};
}  // namespace detail

/// Global collection switch.  Instrumentation sites check this before
/// touching the registry; when false they reduce to one relaxed load.
inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

/// Monotonically increasing sum (C++20 atomic<double> fetch_add).
class Counter {
 public:
  void add(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Last-written value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSummary {
  size_t count = 0;
  double sum = 0, min = 0, max = 0, mean = 0;
  double p50 = 0, p95 = 0, p99 = 0;
};

/// Keeps every recorded sample (runs here are short; a run that records
/// millions of samples should count instead) and summarizes on demand
/// with the same interpolation as util/stats percentile().
class Histogram {
 public:
  void record(double sample);
  size_t count() const;
  HistogramSummary summary() const;
  std::vector<double> samples() const;  ///< copy, for tests

 private:
  mutable std::mutex mutex_;
  std::vector<double> samples_;
};

/// Everything the exporters need, decoupled from live metric objects.
struct MetricsSnapshot {
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSummary> histograms;
  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Name -> metric map.  Lookup takes a mutex; hold the returned reference
/// when instrumenting a hot loop.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;

  /// Drop every registered metric (tests; between CLI subcommands).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One-shot helpers for call sites that fire at most a few times per
/// phase: no-ops (single relaxed load) while collection is disabled.
inline void count(const std::string& name, double delta = 1.0) {
  if (metrics_enabled()) Registry::global().counter(name).add(delta);
}
inline void set_gauge(const std::string& name, double value) {
  if (metrics_enabled()) Registry::global().gauge(name).set(value);
}
inline void observe(const std::string& name, double sample) {
  if (metrics_enabled()) Registry::global().histogram(name).record(sample);
}

}  // namespace nbwp::obs
