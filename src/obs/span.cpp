#include "obs/span.hpp"

#include <string>

#include "obs/request_trace.hpp"

namespace nbwp::obs {

void Span::finish() {
  if (!active_) return;
  active_ = false;
  const auto dt = std::chrono::steady_clock::now() - start_;
  const double ns = std::chrono::duration<double, std::nano>(dt).count();
  if (metrics_enabled())
    Registry::global().histogram(std::string("span.") + name_).record(ns);
  if (trace_enabled())
    Tracer::global().record(name_, ts_us_, ns / 1e3);
  if (TraceContext* context = TraceContext::current())
    context->add_stage(name_, ts_us_, ns / 1e3);
}

}  // namespace nbwp::obs
