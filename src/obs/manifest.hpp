// Structured run manifests.
//
// A bench CSV on its own does not say how it was produced; six months
// later "fig3.csv" is a mystery.  A RunManifest written next to the CSV
// makes the trajectory self-describing: which binary, which options
// (seeds, scale, dataset source), and the metric snapshot of the run.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace nbwp::obs {

struct RunManifest {
  std::string tool;     ///< binary name, e.g. "fig3_cc"
  std::string command;  ///< subcommand when applicable, e.g. "estimate"
  /// Flat configuration: CLI options, seeds, dataset, workload.  String
  /// values keep the writer trivial and lossless for replay.
  std::map<std::string, std::string> config;
  /// Output files this run produced (csv, metrics, trace paths).
  std::map<std::string, std::string> outputs;
  /// Where the run happened: git SHA (NBWP_GIT_SHA env, exported by
  /// scripts/bench_snapshot.sh), hostname, CPU model.  Left empty by
  /// callers; write_manifest_json() fills it via collect_provenance()
  /// so every committed BENCH_*.json baseline is traceable to a commit
  /// and a machine.
  std::map<std::string, std::string> provenance;
  MetricsSnapshot metrics;
};

/// Best-effort environment probe: {"git_sha", "hostname", "cpu_model"}.
/// Keys whose source is unavailable are omitted, never invented.
std::map<std::string, std::string> collect_provenance();

/// {"tool":...,"command":...,"config":{...},"outputs":{...},
///  "provenance":{...},"written_at_unix":...,"metrics":{...}}
void write_manifest_json(std::ostream& os, const RunManifest& manifest);
void write_manifest_file(const std::string& path,
                         const RunManifest& manifest);

/// Conventional manifest path for an output file: "<path>.manifest.json".
std::string manifest_path_for(const std::string& output_path);

}  // namespace nbwp::obs
