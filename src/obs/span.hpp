// RAII wall-clock spans and cached-handle latency recording.
//
//   {
//     obs::Span span("estimate.identify");
//     ... work ...
//   }  // records span.estimate.identify into the histogram registry and,
//      // when real-time tracing is on, an event on this thread's track.
//      // When a TraceContext is installed on the thread (request-scoped
//      // tracing, obs/request_trace.hpp), the closed span is also
//      // appended to that request's stage list.
//
// A span is active when either metrics collection or tracing is enabled
// at construction; otherwise the constructor is one relaxed load and the
// destructor a branch.  Spans may nest freely (including across threads:
// each thread gets its own trace track) — Perfetto renders the nesting
// from the timestamps.
//
// Per-request hot paths that would otherwise pay the Registry name-lookup
// mutex on every observe() use a HistogramHandle (resolve once, cached
// across calls, re-resolved after Registry::clear()) and ScopedLatency
// (RAII milliseconds into a handle picked at scope entry — or at scope
// exit, for call sites that only learn the request class midway).
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nbwp::obs {

class Span {
 public:
  explicit Span(const char* name) : name_(name) {
    if (!metrics_enabled() && !trace_enabled()) return;
    active_ = true;
    ts_us_ = Tracer::global().now_us();
    start_ = std::chrono::steady_clock::now();
  }

  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// End the span early (idempotent; the destructor then does nothing).
  void finish();

 private:
  const char* name_;
  bool active_ = false;
  double ts_us_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// A lazily resolved, cached reference to a registry histogram.  The
/// first get() pays the Registry mutex once; later calls are two relaxed
/// atomic loads.  Registry::clear() bumps the registry generation, which
/// invalidates the cache and forces a re-resolve — so handles may be
/// long-lived members (e.g. per PlanService) without dangling across
/// test/CLI-subcommand clears.
class HistogramHandle {
 public:
  explicit HistogramHandle(std::string name, Labels labels = {})
      : key_(labeled_name(name, labels)) {}

  Histogram& get() {
    const uint64_t generation = Registry::global().generation();
    if (generation_.load(std::memory_order_acquire) == generation)
      return *cached_.load(std::memory_order_relaxed);
    Histogram& h = Registry::global().histogram(key_);
    cached_.store(&h, std::memory_order_relaxed);
    generation_.store(generation, std::memory_order_release);
    return h;
  }

  /// record() through the cache, gated like obs::observe().
  void observe(double sample) {
    if (metrics_enabled()) get().record(sample);
  }

  const std::string& key() const { return key_; }

 private:
  std::string key_;
  std::atomic<Histogram*> cached_{nullptr};
  std::atomic<uint64_t> generation_{~uint64_t{0}};
};

/// RAII latency scope recording elapsed *milliseconds* into a
/// HistogramHandle on destruction.  The handle may be bound late
/// (set_handle) for call sites that only know which series to hit —
/// e.g. the request class — after the work ran; scopes with no handle
/// record nothing.  Inert (one relaxed load) while metrics are off.
class ScopedLatency {
 public:
  ScopedLatency() {
    if (!metrics_enabled()) return;
    active_ = true;
    start_ = std::chrono::steady_clock::now();
  }
  explicit ScopedLatency(HistogramHandle& handle) : ScopedLatency() {
    handle_ = &handle;
  }

  ~ScopedLatency() {
    if (active_ && handle_) handle_->get().record(elapsed_ms());
  }

  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;

  void set_handle(HistogramHandle& handle) { handle_ = &handle; }
  bool active() const { return active_; }

  double elapsed_ms() const {
    if (!active_) return 0;
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  bool active_ = false;
  HistogramHandle* handle_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nbwp::obs
