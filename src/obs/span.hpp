// RAII wall-clock spans.
//
//   {
//     obs::Span span("estimate.identify");
//     ... work ...
//   }  // records span.estimate.identify into the histogram registry and,
//      // when real-time tracing is on, an event on this thread's track.
//
// A span is active when either metrics collection or tracing is enabled
// at construction; otherwise the constructor is one relaxed load and the
// destructor a branch.  Spans may nest freely (including across threads:
// each thread gets its own trace track) — Perfetto renders the nesting
// from the timestamps.
#pragma once

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nbwp::obs {

class Span {
 public:
  explicit Span(const char* name) : name_(name) {
    if (!metrics_enabled() && !trace_enabled()) return;
    active_ = true;
    ts_us_ = Tracer::global().now_us();
    start_ = std::chrono::steady_clock::now();
  }

  ~Span() { finish(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// End the span early (idempotent; the destructor then does nothing).
  void finish();

 private:
  const char* name_;
  bool active_ = false;
  double ts_us_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace nbwp::obs
