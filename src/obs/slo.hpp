// Declarative service-level objectives over the metric registry.
//
// An SLO spec is a ';'-separated list of objectives in one of two forms:
//
//   latency     <histogram> <p50|p95|p99|mean|max> < <value>[ns|us|ms|s]
//               e.g.  serve.request_ms p99 < 5ms
//   error rate  <bad-counter> / <total-counter> rate < <bound>
//               e.g.  serve.requests{class="degraded"} / serve.requests
//                     rate < 0.01
//
// A unit suffix on the latency bound is converted into the metric's own
// unit, inferred from its name: `*_ms` milliseconds, `*_us` microseconds,
// `*_ns` and `span.*` nanoseconds.  A bare number is compared raw.
// Labeled series are addressed by their encoded labeled_name().
//
// Latency objectives evaluate on the histogram's sliding window
// (StreamingHistogram window_summary(); cumulative fallback when the
// window is empty or the histogram is exact-mode), error rates on the
// cumulative counters.  Each result reports a burn rate —
// observed/bound — so a dashboard or admission controller can see *how
// hard* an objective is burning, not just that it tripped: burn > 1
// is out of budget, ~0.5 means half the budget is consumed.
//
// This is the signal the ROADMAP's SLO-aware admission controller will
// consume; today it is surfaced by `nbwp_cli --slo` and
// `bench/serve_throughput --slo`.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nbwp::obs {

class Registry;

struct SloObjective {
  enum class Kind { kLatency, kErrorRate };
  Kind kind = Kind::kLatency;
  std::string spec;    ///< original objective text (trimmed)
  std::string metric;  ///< histogram (latency) or bad-counter (error rate)
  std::string total;   ///< total-counter (error rate only)
  std::string stat;    ///< p50|p95|p99|mean|max (latency only)
  double bound = 0;    ///< in the metric's unit / as a rate
};

struct SloResult {
  SloObjective objective;
  double observed = 0;
  double burn_rate = 0;  ///< observed / bound; > 1 means out of budget
  bool ok = false;
  bool windowed = false;  ///< evaluated on a sliding window
  bool missing = false;   ///< metric absent from the registry
};

struct SloReport {
  std::vector<SloResult> results;
  bool ok() const;
  /// Worst burn rate across objectives (0 when empty).
  double max_burn_rate() const;
};

class SloMonitor {
 public:
  /// Parse a ';'-separated spec; throws nbwp::Error on bad grammar.
  static SloMonitor parse(const std::string& spec);

  void add(SloObjective objective);
  size_t size() const { return objectives_.size(); }
  const std::vector<SloObjective>& objectives() const { return objectives_; }

  SloReport evaluate(const Registry& registry) const;

 private:
  std::vector<SloObjective> objectives_;
};

/// {"ok":bool,"max_burn_rate":...,"objectives":[{...}]} — consumed by
/// the CI serve-SLO smoke job.
void write_slo_report_json(std::ostream& os, const SloReport& report);

}  // namespace nbwp::obs
