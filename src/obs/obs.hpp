// Umbrella header for instrumentation sites: metrics + spans +
// request-scoped traces.  Exporters, manifests, and SLO evaluation are
// separate includes (only frontends need them).
#pragma once

#include "obs/metrics.hpp"        // IWYU pragma: export
#include "obs/request_trace.hpp"  // IWYU pragma: export
#include "obs/span.hpp"           // IWYU pragma: export
#include "obs/trace.hpp"          // IWYU pragma: export
