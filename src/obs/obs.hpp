// Umbrella header for instrumentation sites: metrics + spans.
// Exporters and manifests are separate includes (only frontends need
// them).
#pragma once

#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/span.hpp"     // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export
