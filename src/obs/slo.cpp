#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strfmt.hpp"

namespace nbwp::obs {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Unit of a histogram, inferred from its naming convention, expressed
/// in nanoseconds per unit.  0 = unitless (bounds compare raw).
double metric_unit_ns(const std::string& name) {
  auto ends_with = [&](const char* suffix) {
    const std::string sfx(suffix);
    // The unit suffix may be followed by a label block.
    const auto brace = name.find('{');
    const std::string base =
        brace == std::string::npos ? name : name.substr(0, brace);
    return base.size() >= sfx.size() &&
           base.compare(base.size() - sfx.size(), sfx.size(), sfx) == 0;
  };
  if (ends_with("_ms")) return 1e6;
  if (ends_with("_us")) return 1e3;
  if (ends_with("_ns")) return 1.0;
  if (name.rfind("span.", 0) == 0) return 1.0;
  return 0.0;
}

/// "5ms" -> value 5, unit "ms".  No suffix -> unit "".
void split_value_unit(const std::string& token, double& value,
                      std::string& unit) {
  size_t pos = 0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw Error("SLO: bad bound '" + token + "'");
  }
  unit = token.substr(pos);
  if (unit != "" && unit != "ns" && unit != "us" && unit != "ms" &&
      unit != "s")
    throw Error("SLO: unknown unit '" + unit + "' in '" + token +
                "' (ns|us|ms|s)");
}

double unit_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 0.0;  // bare number
}

SloObjective parse_objective(const std::string& text) {
  SloObjective obj;
  obj.spec = trim(text);
  // Tokenize on whitespace after padding the operators, so both
  // "p99<5ms" and "p99 < 5ms" parse.
  std::string padded;
  for (char c : obj.spec) {
    if (c == '<') {
      padded += " < ";
    } else if (c == '/') {
      padded += " / ";
    } else {
      padded += c;
    }
  }
  std::istringstream in(padded);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);

  // error rate: METRIC / TOTAL rate < BOUND
  if (tokens.size() == 6 && tokens[1] == "/" && tokens[3] == "rate" &&
      tokens[4] == "<") {
    obj.kind = SloObjective::Kind::kErrorRate;
    obj.metric = tokens[0];
    obj.total = tokens[2];
    std::string unit;
    split_value_unit(tokens[5], obj.bound, unit);
    if (!unit.empty())
      throw Error("SLO: error-rate bound takes no unit in '" + obj.spec +
                  "'");
    return obj;
  }
  // latency: METRIC STAT < VALUE[unit]
  if (tokens.size() == 4 && tokens[2] == "<") {
    obj.kind = SloObjective::Kind::kLatency;
    obj.metric = tokens[0];
    obj.stat = tokens[1];
    if (obj.stat != "p50" && obj.stat != "p95" && obj.stat != "p99" &&
        obj.stat != "mean" && obj.stat != "max")
      throw Error("SLO: unknown stat '" + obj.stat + "' in '" + obj.spec +
                  "' (p50|p95|p99|mean|max)");
    double value = 0;
    std::string unit;
    split_value_unit(tokens[3], value, unit);
    const double bound_ns = unit_ns(unit);
    if (bound_ns > 0) {
      const double metric_ns = metric_unit_ns(obj.metric);
      if (metric_ns <= 0)
        throw Error("SLO: '" + obj.metric +
                    "' has no unit suffix (_ns/_us/_ms) to convert '" +
                    tokens[3] + "' into");
      obj.bound = value * bound_ns / metric_ns;
    } else {
      obj.bound = value;
    }
    return obj;
  }
  throw Error(
      "SLO: cannot parse '" + obj.spec +
      "' (expected '<metric> <stat> < <bound>[unit]' or "
      "'<bad> / <total> rate < <bound>')");
}

}  // namespace

bool SloReport::ok() const {
  return std::all_of(results.begin(), results.end(),
                     [](const SloResult& r) { return r.ok; });
}

double SloReport::max_burn_rate() const {
  double burn = 0;
  for (const SloResult& r : results) burn = std::max(burn, r.burn_rate);
  return burn;
}

SloMonitor SloMonitor::parse(const std::string& spec) {
  SloMonitor monitor;
  std::string rest = spec;
  size_t pos = 0;
  while (pos <= rest.size()) {
    const size_t semi = rest.find(';', pos);
    const std::string part =
        rest.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos);
    if (!trim(part).empty()) monitor.add(parse_objective(part));
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  if (monitor.size() == 0) throw Error("SLO: empty spec");
  return monitor;
}

void SloMonitor::add(SloObjective objective) {
  objectives_.push_back(std::move(objective));
}

SloReport SloMonitor::evaluate(const Registry& registry) const {
  SloReport report;
  for (const SloObjective& obj : objectives_) {
    SloResult r;
    r.objective = obj;
    if (obj.kind == SloObjective::Kind::kLatency) {
      const Histogram* h = registry.find_histogram(obj.metric);
      if (!h || h->count() == 0) {
        r.missing = true;
        r.ok = false;
      } else {
        const HistogramSummary s = h->window_summary();
        r.windowed = h->mode() == HistogramMode::kStreaming;
        if (obj.stat == "p50") r.observed = s.p50;
        if (obj.stat == "p95") r.observed = s.p95;
        if (obj.stat == "p99") r.observed = s.p99;
        if (obj.stat == "mean") r.observed = s.mean;
        if (obj.stat == "max") r.observed = s.max;
        r.ok = r.observed <= obj.bound;
      }
    } else {
      const Counter* bad = registry.find_counter(obj.metric);
      const Counter* total = registry.find_counter(obj.total);
      if (!total || total->value() <= 0) {
        r.missing = true;
        r.ok = false;
      } else {
        r.observed = (bad ? bad->value() : 0.0) / total->value();
        r.ok = r.observed <= obj.bound;
      }
    }
    r.burn_rate = obj.bound > 0 ? r.observed / obj.bound
                                : (r.observed > 0 ? INFINITY : 0.0);
    report.results.push_back(std::move(r));
  }
  return report;
}

void write_slo_report_json(std::ostream& os, const SloReport& report) {
  os << strfmt("{\"ok\":%s,\"max_burn_rate\":%.6g,\"objectives\":[",
               report.ok() ? "true" : "false",
               std::isfinite(report.max_burn_rate())
                   ? report.max_burn_rate()
                   : -1.0);
  bool first = true;
  for (const SloResult& r : report.results) {
    if (!first) os << ',';
    first = false;
    const SloObjective& o = r.objective;
    os << strfmt(
        "{\"spec\":%s,\"kind\":%s,\"metric\":%s,%s\"bound\":%.17g,"
        "\"observed\":%.17g,\"burn_rate\":%.6g,\"ok\":%s,"
        "\"windowed\":%s,\"missing\":%s}",
        json_quote(o.spec).c_str(),
        o.kind == SloObjective::Kind::kLatency ? "\"latency\""
                                               : "\"error_rate\"",
        json_quote(o.metric).c_str(),
        o.kind == SloObjective::Kind::kLatency
            ? strfmt("\"stat\":%s,", json_quote(o.stat).c_str()).c_str()
            : strfmt("\"total\":%s,", json_quote(o.total).c_str()).c_str(),
        o.bound, r.observed,
        std::isfinite(r.burn_rate) ? r.burn_rate : -1.0,
        r.ok ? "true" : "false", r.windowed ? "true" : "false",
        r.missing ? "true" : "false");
  }
  os << "]}";
}

}  // namespace nbwp::obs
