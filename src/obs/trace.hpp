// Real-time (wall-clock) Chrome/Perfetto trace collection.
//
// Complements hetsim::write_chrome_trace, which lays out *virtual* time
// charged by the cost models: this tracer records what actually happened
// on the host — spans opened by obs::Span on any thread, stamped with a
// steady-clock time relative to the process-wide epoch.  Events are
// "X" (complete) events; Perfetto nests overlapping events on the same
// track automatically, so nested Span scopes render as a flame graph.
#pragma once

#include <atomic>
#include <chrono>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace nbwp::obs {

struct TraceEvent {
  std::string name;
  int tid = 0;        ///< stable small per-thread id (0 = first seen)
  double ts_us = 0;   ///< start, microseconds since the tracer epoch
  double dur_us = 0;
};

class Tracer {
 public:
  static Tracer& global();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Microseconds since the tracer epoch (construction or last clear()).
  double now_us() const;

  /// Record a completed span on the calling thread's track.
  void record(std::string name, double ts_us, double dur_us);

  std::vector<TraceEvent> events() const;
  void clear();

  /// Chrome trace JSON (load in ui.perfetto.dev or chrome://tracing).
  void write_chrome_trace(std::ostream& os,
                          const std::string& process_name = "nbwp") const;
  void write_chrome_trace_file(const std::string& path,
                               const std::string& process_name = "nbwp") const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// Stable small integer id for the calling thread (assigned on first use).
int current_thread_tid();

/// Convenience: enable/disable metrics and real-time tracing together.
void set_trace_enabled(bool on);
inline bool trace_enabled() { return Tracer::global().enabled(); }

}  // namespace nbwp::obs
