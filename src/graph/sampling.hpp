// Graph sampling for the framework's Sample step (Section III-A.1):
// choose a set S of sqrt(n) vertices uniformly at random and work with the
// induced subgraph G' = G[S].
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace nbwp::graph {

/// k distinct vertex ids drawn uniformly, sorted ascending.  Sorting keeps
/// the sample's index order consistent with the original graph's, so a
/// prefix cut on the sample corresponds to a prefix cut on the input.
std::vector<Vertex> uniform_vertex_sample(const CsrGraph& g, Vertex k,
                                          Rng& rng);

/// Induced subgraph G[S]; `sorted_vertices` must be sorted and unique.
/// Sampled vertex i becomes vertex i of the result.
CsrGraph induced_subgraph(const CsrGraph& g,
                          std::span<const Vertex> sorted_vertices);

/// Deterministic contiguous sample [first, first + k): the "predetermined"
/// non-random sampling of the Fig. 7 ablation.
std::vector<Vertex> contiguous_vertex_sample(const CsrGraph& g, Vertex first,
                                             Vertex k);

/// Degree-proportional (importance) sample without replacement, sorted.
/// The importance-sampling extension the paper leaves as future work
/// (Section II, citing Motwani & Raghavan [23]): high-degree vertices are
/// more likely to be kept, so the induced subgraph retains far more edges
/// per sampled vertex than a uniform draw.  Implemented as weighted
/// reservoir sampling (Efraimidis-Spirakis keys u^(1/w)).
std::vector<Vertex> importance_vertex_sample(const CsrGraph& g, Vertex k,
                                             Rng& rng);

}  // namespace nbwp::graph
