#include "graph/generators.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.hpp"

namespace nbwp::graph {

CsrGraph erdos_renyi(Vertex n, uint64_t target_edges, Rng& rng) {
  NBWP_REQUIRE(n >= 2, "erdos_renyi needs at least two vertices");
  std::vector<Edge> edges;
  edges.reserve(target_edges);
  for (uint64_t i = 0; i < target_edges; ++i) {
    const auto u = static_cast<Vertex>(rng.uniform(n));
    const auto v = static_cast<Vertex>(rng.uniform(n));
    if (u != v) edges.emplace_back(u, v);
  }
  return CsrGraph::from_undirected_edges(n, edges);
}

CsrGraph rmat(Vertex n, uint64_t target_edges, Rng& rng, double a, double b,
              double c) {
  NBWP_REQUIRE(n >= 2, "rmat needs at least two vertices");
  NBWP_REQUIRE(a + b + c < 1.0, "rmat probabilities must sum below 1");
  const int scale = std::bit_width(static_cast<uint64_t>(n - 1));
  std::vector<Edge> edges;
  edges.reserve(target_edges);
  for (uint64_t i = 0; i < target_edges; ++i) {
    uint64_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double p = rng.uniform_real();
      // Quadrant selection with slight noise to avoid exact self-similarity.
      if (p < a) {
        // top-left: nothing to add
      } else if (p < a + b) {
        v |= 1ULL << bit;
      } else if (p < a + b + c) {
        u |= 1ULL << bit;
      } else {
        u |= 1ULL << bit;
        v |= 1ULL << bit;
      }
    }
    u %= n;
    v %= n;
    if (u != v)
      edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return CsrGraph::from_undirected_edges(n, edges);
}

CsrGraph grid_road(Vertex rows, Vertex cols, Rng& rng, double drop_prob,
                   double diag_prob) {
  NBWP_REQUIRE(rows >= 2 && cols >= 2, "grid_road needs a 2x2 grid minimum");
  const Vertex n = rows * cols;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * 2);
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols && !rng.bernoulli(drop_prob))
        edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows && !rng.bernoulli(drop_prob))
        edges.emplace_back(id(r, c), id(r + 1, c));
      if (r + 1 < rows && c + 1 < cols && rng.bernoulli(diag_prob))
        edges.emplace_back(id(r, c), id(r + 1, c + 1));
    }
  }
  return CsrGraph::from_undirected_edges(n, edges);
}

CsrGraph planar_triangulation(Vertex rows, Vertex cols, Rng& rng) {
  NBWP_REQUIRE(rows >= 2 && cols >= 2, "triangulation needs a 2x2 grid");
  const Vertex n = rows * cols;
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * 3);
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
      if (r + 1 < rows && c + 1 < cols) {
        // Random diagonal orientation keeps degree statistics isotropic.
        if (rng.bernoulli(0.5))
          edges.emplace_back(id(r, c), id(r + 1, c + 1));
        else
          edges.emplace_back(id(r, c + 1), id(r + 1, c));
      }
    }
  }
  return CsrGraph::from_undirected_edges(n, edges);
}

CsrGraph preferential_attachment(Vertex n, unsigned edges_per_vertex,
                                 Rng& rng) {
  NBWP_REQUIRE(n > edges_per_vertex, "n must exceed edges_per_vertex");
  NBWP_REQUIRE(edges_per_vertex >= 1, "edges_per_vertex must be >= 1");
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * edges_per_vertex);
  // `targets` holds one entry per half-edge; sampling uniformly from it is
  // sampling proportional to degree.
  std::vector<Vertex> targets;
  targets.reserve(static_cast<size_t>(n) * edges_per_vertex * 2);
  // Seed clique over the first m+1 vertices.
  for (Vertex u = 0; u <= edges_per_vertex; ++u) {
    for (Vertex v = u + 1; v <= edges_per_vertex; ++v) {
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  for (Vertex u = edges_per_vertex + 1; u < n; ++u) {
    for (unsigned j = 0; j < edges_per_vertex; ++j) {
      const Vertex v = targets[rng.uniform(targets.size())];
      if (v == u) continue;
      edges.emplace_back(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return CsrGraph::from_undirected_edges(n, edges);
}

CsrGraph banded_mesh(Vertex n, unsigned avg_degree, Vertex bandwidth,
                     Rng& rng) {
  NBWP_REQUIRE(n >= 4, "banded_mesh needs at least four vertices");
  NBWP_REQUIRE(bandwidth >= 2, "bandwidth must be at least 2");
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(n) * avg_degree / 2 + n);
  // Backbone chain guarantees one big component like a physical mesh.
  for (Vertex v = 0; v + 1 < n; ++v) edges.emplace_back(v, v + 1);
  const uint64_t extra =
      static_cast<uint64_t>(n) * std::max(1u, avg_degree) / 2;
  for (uint64_t i = 0; i < extra; ++i) {
    const auto u = static_cast<Vertex>(rng.uniform(n));
    const int64_t offset =
        rng.uniform_range(-static_cast<int64_t>(bandwidth),
                          static_cast<int64_t>(bandwidth));
    const int64_t w = static_cast<int64_t>(u) + offset;
    if (w < 0 || w >= static_cast<int64_t>(n) || w == static_cast<int64_t>(u))
      continue;
    edges.emplace_back(u, static_cast<Vertex>(w));
  }
  return CsrGraph::from_undirected_edges(n, edges);
}

CsrGraph road_network(Vertex n_target, Rng& rng) {
  NBWP_REQUIRE(n_target >= 16, "road_network needs n >= 16");
  // Intersections form a sparse grid; roads between intersections are
  // chains of degree-2 vertices.
  const auto g =
      std::max<Vertex>(2, static_cast<Vertex>(std::sqrt(n_target / 6.0)));
  struct GridEdge {
    Vertex a, b;
  };
  std::vector<GridEdge> roads;
  auto id = [g](Vertex r, Vertex c) { return r * g + c; };
  for (Vertex r = 0; r < g; ++r) {
    for (Vertex c = 0; c < g; ++c) {
      if (c + 1 < g && !rng.bernoulli(0.08))
        roads.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < g && !rng.bernoulli(0.08))
        roads.push_back({id(r, c), id(r + 1, c)});
    }
  }
  NBWP_REQUIRE(!roads.empty(), "degenerate road grid");
  const Vertex intersections = g * g;
  const uint64_t chain_budget =
      n_target > intersections ? n_target - intersections : 0;
  const uint64_t per_road = chain_budget / roads.size();
  uint64_t leftover = chain_budget % roads.size();

  std::vector<Edge> edges;
  edges.reserve(n_target + roads.size());
  Vertex next = intersections;
  for (const auto& road : roads) {
    uint64_t links = per_road + (leftover > 0 ? 1 : 0);
    if (leftover > 0) --leftover;
    Vertex prev = road.a;
    for (uint64_t i = 0; i < links; ++i) {
      edges.emplace_back(prev, next);
      prev = next++;
    }
    edges.emplace_back(prev, road.b);
  }
  const CsrGraph raw = CsrGraph::from_undirected_edges(next, edges);
  return relabel_bfs(raw);
}

CsrGraph relabel_random(const CsrGraph& g, Rng& rng) {
  const Vertex n = g.num_vertices();
  const std::vector<Vertex> order = random_permutation(n, rng);
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v : g.neighbors(u))
      if (u < v) edges.emplace_back(order[u], order[v]);
  return CsrGraph::from_undirected_edges(n, edges);
}

CsrGraph relabel_bfs(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  constexpr Vertex kUnset = ~Vertex{0};
  std::vector<Vertex> order(n, kUnset);  // old id -> new id
  Vertex next = 0;
  std::vector<Vertex> queue;
  queue.reserve(n);
  for (Vertex s = 0; s < n; ++s) {
    if (order[s] != kUnset) continue;
    order[s] = next++;
    queue.clear();
    queue.push_back(s);
    for (size_t head = 0; head < queue.size(); ++head) {
      for (Vertex v : g.neighbors(queue[head])) {
        if (order[v] == kUnset) {
          order[v] = next++;
          queue.push_back(v);
        }
      }
    }
  }
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v : g.neighbors(u))
      if (u < v) edges.emplace_back(order[u], order[v]);
  return CsrGraph::from_undirected_edges(n, edges);
}

CsrGraph with_components(const CsrGraph& g, unsigned k) {
  NBWP_REQUIRE(k >= 1, "component count must be >= 1");
  if (k == 1) return g;
  const Vertex n = g.num_vertices();
  const Vertex piece = std::max<Vertex>(1, n / k);
  auto piece_of = [piece, k](Vertex v) {
    return std::min<Vertex>(v / piece, k - 1);
  };
  std::vector<Edge> edges;
  edges.reserve(g.num_edges());
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v : g.neighbors(u))
      if (u < v && piece_of(u) == piece_of(v)) edges.emplace_back(u, v);
  return CsrGraph::from_undirected_edges(n, edges);
}

}  // namespace nbwp::graph
