// Prefix partitioning of a graph for Algorithm 1 (Phase I).
//
// Algorithm 1 splits G by a vertex-index prefix: V(G_CPU) = {v_0..v_{ncpu-1}},
// V(G_GPU) = the rest.  Edges with one endpoint on each side are the *cross
// edges* processed by the merge step.  `PrefixCutProfile` additionally
// tabulates, for every possible cut, how many edges fall on each side — the
// structural inputs of the virtual-time model — in O(n + m) total, which is
// what makes the exhaustive-search oracle cheap.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"

namespace nbwp::graph {

struct GraphPartition {
  CsrGraph cpu_part;               ///< induced on [0, n_cpu), original ids
  CsrGraph gpu_part;               ///< induced on [n_cpu, n), ids shifted
  std::vector<Edge> cross_edges;   ///< global (original) vertex ids
  Vertex n_cpu = 0;
};

/// Split by vertex prefix: first `n_cpu` vertices to the CPU side.
GraphPartition split_by_prefix(const CsrGraph& g, Vertex n_cpu);

/// Edge counts on each side of every possible prefix cut.
class PrefixCutProfile {
 public:
  explicit PrefixCutProfile(const CsrGraph& g);

  Vertex num_vertices() const { return n_; }
  uint64_t total_edges() const { return total_; }

  /// Edges with both endpoints < cut (the CPU side).
  uint64_t prefix_edges(Vertex cut) const { return prefix_[cut]; }
  /// Edges with both endpoints >= cut (the GPU side).
  uint64_t suffix_edges(Vertex cut) const { return suffix_[cut]; }
  /// Edges spanning the cut.
  uint64_t cross_edges(Vertex cut) const {
    return total_ - prefix_[cut] - suffix_[cut];
  }

 private:
  Vertex n_ = 0;
  uint64_t total_ = 0;
  std::vector<uint64_t> prefix_;  // indexed by cut in [0, n]
  std::vector<uint64_t> suffix_;
};

}  // namespace nbwp::graph
