#include "graph/convert.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nbwp::graph {

CsrGraph graph_from_triplets(const TripletMatrix& m) {
  NBWP_REQUIRE(m.rows == m.cols, "graph requires a square matrix");
  const auto n = static_cast<Vertex>(m.rows);
  std::vector<Edge> edges;
  edges.reserve(m.entries.size());
  for (const auto& e : m.entries) {
    if (e.r == e.c) continue;
    edges.emplace_back(static_cast<Vertex>(e.r), static_cast<Vertex>(e.c));
  }
  return CsrGraph::from_undirected_edges(n, edges);
}

TripletMatrix triplets_from_graph(const CsrGraph& g) {
  TripletMatrix m;
  m.rows = m.cols = g.num_vertices();
  m.pattern = true;
  m.symmetric = true;
  for (Vertex u = 0; u < g.num_vertices(); ++u)
    for (Vertex v : g.neighbors(u))
      if (v <= u) m.entries.push_back({u, v, 1.0});
  return m;
}

}  // namespace nbwp::graph
