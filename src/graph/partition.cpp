#include "graph/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nbwp::graph {

GraphPartition split_by_prefix(const CsrGraph& g, Vertex n_cpu) {
  const Vertex n = g.num_vertices();
  NBWP_REQUIRE(n_cpu <= n, "prefix size exceeds vertex count");
  GraphPartition part;
  part.n_cpu = n_cpu;

  // Build both sides in one pass over the adjacency.
  std::vector<uint64_t> cpu_ptr(static_cast<size_t>(n_cpu) + 1, 0);
  std::vector<uint64_t> gpu_ptr(static_cast<size_t>(n - n_cpu) + 1, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.neighbors(u)) {
      const bool cu = u < n_cpu, cv = v < n_cpu;
      if (cu && cv) {
        ++cpu_ptr[u + 1];
      } else if (!cu && !cv) {
        ++gpu_ptr[u - n_cpu + 1];
      } else if (u < v) {
        part.cross_edges.emplace_back(u, v);
      }
    }
  }
  for (size_t i = 1; i < cpu_ptr.size(); ++i) cpu_ptr[i] += cpu_ptr[i - 1];
  for (size_t i = 1; i < gpu_ptr.size(); ++i) gpu_ptr[i] += gpu_ptr[i - 1];

  std::vector<Vertex> cpu_adj(cpu_ptr.back());
  std::vector<Vertex> gpu_adj(gpu_ptr.back());
  {
    std::vector<uint64_t> ccur(cpu_ptr.begin(), cpu_ptr.end() - 1);
    std::vector<uint64_t> gcur(gpu_ptr.begin(), gpu_ptr.end() - 1);
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v : g.neighbors(u)) {
        const bool cu = u < n_cpu, cv = v < n_cpu;
        if (cu && cv) {
          cpu_adj[ccur[u]++] = v;
        } else if (!cu && !cv) {
          gpu_adj[gcur[u - n_cpu]++] = v - n_cpu;
        }
      }
    }
  }
  part.cpu_part =
      CsrGraph::from_csr(n_cpu, std::move(cpu_ptr), std::move(cpu_adj));
  part.gpu_part = CsrGraph::from_csr(n - n_cpu, std::move(gpu_ptr),
                                     std::move(gpu_adj));
  return part;
}

PrefixCutProfile::PrefixCutProfile(const CsrGraph& g) {
  n_ = g.num_vertices();
  total_ = g.num_edges();
  // Histogram edges by max and min endpoint.
  std::vector<uint64_t> hist_max(static_cast<size_t>(n_) + 1, 0);
  std::vector<uint64_t> hist_min(static_cast<size_t>(n_) + 1, 0);
  for (Vertex u = 0; u < n_; ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (u < v) {
        ++hist_max[v];   // max endpoint is v
        ++hist_min[u];   // min endpoint is u
      }
    }
  }
  prefix_.assign(static_cast<size_t>(n_) + 1, 0);
  suffix_.assign(static_cast<size_t>(n_) + 1, 0);
  // prefix_[c] = #edges with max endpoint < c.
  for (Vertex c = 1; c <= n_; ++c)
    prefix_[c] = prefix_[c - 1] + hist_max[c - 1];
  // suffix_[c] = #edges with min endpoint >= c.
  suffix_[n_] = 0;
  for (Vertex c = n_; c-- > 0;)
    suffix_[c] = suffix_[c + 1] + hist_min[c];
}

}  // namespace nbwp::graph
