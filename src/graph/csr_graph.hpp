// Compressed-sparse-row undirected graph.
//
// Both directions of every undirected edge are stored (standard adjacency
// CSR), so `adjacency().size() == 2 * num_edges()`.  Vertex ids are 32-bit;
// the paper's largest graph (asia_osm, 12M nodes) fits comfortably.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace nbwp::graph {

using Vertex = uint32_t;
using Edge = std::pair<Vertex, Vertex>;

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Build from an undirected edge list.  Self-loops are dropped and
  /// duplicate edges are collapsed; each surviving edge appears in both
  /// endpoint adjacency lists, sorted by neighbor id.
  static CsrGraph from_undirected_edges(Vertex n, std::span<const Edge> edges);

  /// Build directly from validated CSR arrays (both directions present).
  static CsrGraph from_csr(Vertex n, std::vector<uint64_t> row_ptr,
                           std::vector<Vertex> adj);

  Vertex num_vertices() const { return n_; }
  uint64_t num_edges() const { return adj_.size() / 2; }  ///< undirected
  uint64_t num_directed_edges() const { return adj_.size(); }

  uint64_t degree(Vertex v) const { return row_ptr_[v + 1] - row_ptr_[v]; }

  std::span<const Vertex> neighbors(Vertex v) const {
    return {adj_.data() + row_ptr_[v],
            static_cast<size_t>(row_ptr_[v + 1] - row_ptr_[v])};
  }

  std::span<const uint64_t> row_ptr() const { return row_ptr_; }
  std::span<const Vertex> adjacency() const { return adj_; }

  bool has_edge(Vertex u, Vertex v) const;

  /// Check every adjacency-CSR invariant and throw nbwp::Error on the
  /// first violation: row_ptr has n+1 monotone entries from 0 to the
  /// adjacency size, neighbor ids are in range and strictly increasing
  /// per list (sorted, duplicate-free), no self-loops, and every arc has
  /// its reverse (undirected symmetry).  from_csr runs this on adopted
  /// arrays.
  void validate() const;

  /// Memory footprint of the CSR arrays in bytes (used for PCIe costs).
  double bytes() const {
    return static_cast<double>(row_ptr_.size() * sizeof(uint64_t) +
                               adj_.size() * sizeof(Vertex));
  }

  /// Recover the undirected edge list (u < v), sorted.
  std::vector<Edge> undirected_edges() const;

 private:
  Vertex n_ = 0;
  std::vector<uint64_t> row_ptr_{0};
  std::vector<Vertex> adj_;
};

}  // namespace nbwp::graph
