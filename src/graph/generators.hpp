// Synthetic graph generators.
//
// These produce the structural families of Table II: FEM-style meshes
// (cant, consph, pwtk, ...), planar triangulations (delaunay_n22),
// power-law web graphs (web-BerkStan, webbase-1M), and low-degree
// high-diameter road networks (asia/germany/italy/netherlands_osm).
// All generators are deterministic given the Rng.
#pragma once

#include <cstdint>

#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace nbwp::graph {

/// G(n, m): m edges drawn uniformly at random.
CsrGraph erdos_renyi(Vertex n, uint64_t target_edges, Rng& rng);

/// Recursive-matrix (R-MAT) generator; yields skewed, power-law-ish degree
/// distributions similar to web graphs.  n is rounded up to a power of two
/// internally but the returned graph has exactly `n` vertices.
CsrGraph rmat(Vertex n, uint64_t target_edges, Rng& rng, double a = 0.57,
              double b = 0.19, double c = 0.19);

/// Road-network analog: a rows x cols grid with a fraction of edges removed
/// and occasional diagonal shortcuts.  Average degree ~2-4 and large
/// diameter, like the OSM graphs.
CsrGraph grid_road(Vertex rows, Vertex cols, Rng& rng,
                   double drop_prob = 0.06, double diag_prob = 0.03);

/// Planar-triangulation analog of delaunay_n*: a grid with one diagonal per
/// cell, average degree ~6.
CsrGraph planar_triangulation(Vertex rows, Vertex cols, Rng& rng);

/// Preferential attachment (Barabási–Albert): each new vertex attaches to
/// `edges_per_vertex` existing vertices with probability proportional to
/// their degree.  Produces a scale-free degree distribution.
CsrGraph preferential_attachment(Vertex n, unsigned edges_per_vertex,
                                 Rng& rng);

/// FEM-mesh analog: vertices connect to ~`avg_degree` random neighbors
/// within a band of width `bandwidth`, in small cliques (element blocks).
/// Matches the banded/blocked structure of cant, consph, pwtk, shipsec1.
CsrGraph banded_mesh(Vertex n, unsigned avg_degree, Vertex bandwidth,
                     Rng& rng);

/// OSM-style road network: a sparse grid of intersections whose edges are
/// subdivided into chains of degree-2 vertices until the graph has
/// ~`n_target` vertices.  Average degree ~2.1, huge diameter, one giant
/// component — the structure of asia/germany/italy/netherlands_osm.
/// Vertices are relabeled in BFS order so that index order is spatially
/// coherent, as it is in the OSM exports.
CsrGraph road_network(Vertex n_target, Rng& rng);

/// Relabel vertices by a uniformly random permutation.  Used on RMAT web
/// graphs: the recursive generator concentrates hubs at low ids, a
/// self-similarity artifact that real crawl-order ids do not have.
CsrGraph relabel_random(const CsrGraph& g, Rng& rng);

/// Relabel vertices in BFS order from vertex 0 (unreached vertices keep
/// their relative order after the reached ones).  Produces the banded
/// adjacency structure typical of mesh/road matrices.
CsrGraph relabel_bfs(const CsrGraph& g);

/// Splits a generated graph into `k` disconnected pieces of roughly equal
/// size by deleting edges crossing piece boundaries; used to get graphs
/// with a controlled number of connected components.
CsrGraph with_components(const CsrGraph& g, unsigned k);

}  // namespace nbwp::graph
