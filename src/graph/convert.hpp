// Conversions between Matrix Market triplets and graphs.
//
// Table II uses the same datasets both as graphs (n, m) and as matrices
// (n, NNZ); this is the graph-side view (pattern, symmetrized, self-loops
// dropped).
#pragma once

#include "graph/csr_graph.hpp"
#include "util/mmio.hpp"

namespace nbwp::graph {

CsrGraph graph_from_triplets(const TripletMatrix& m);

TripletMatrix triplets_from_graph(const CsrGraph& g);

}  // namespace nbwp::graph
