#include "graph/csr_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nbwp::graph {

CsrGraph CsrGraph::from_undirected_edges(Vertex n,
                                         std::span<const Edge> edges) {
  // Count both directions (self-loops excluded).
  std::vector<uint64_t> counts(static_cast<size_t>(n) + 1, 0);
  for (const auto& [u, v] : edges) {
    NBWP_REQUIRE(u < n && v < n, "edge endpoint out of range");
    if (u == v) continue;
    ++counts[u + 1];
    ++counts[v + 1];
  }
  for (size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];

  std::vector<Vertex> adj(counts[n]);
  std::vector<uint64_t> cursor(counts.begin(), counts.end() - 1);
  for (const auto& [u, v] : edges) {
    if (u == v) continue;
    adj[cursor[u]++] = v;
    adj[cursor[v]++] = u;
  }

  // Sort each adjacency list and drop duplicates, compacting in place.
  CsrGraph g;
  g.n_ = n;
  g.row_ptr_.assign(static_cast<size_t>(n) + 1, 0);
  uint64_t write = 0;
  for (Vertex v = 0; v < n; ++v) {
    const uint64_t lo = counts[v], hi = counts[v + 1];
    std::sort(adj.begin() + static_cast<ptrdiff_t>(lo),
              adj.begin() + static_cast<ptrdiff_t>(hi));
    uint64_t unique_start = write;
    for (uint64_t i = lo; i < hi; ++i) {
      if (i > lo && adj[i] == adj[i - 1]) continue;
      adj[write++] = adj[i];
    }
    g.row_ptr_[v + 1] = g.row_ptr_[v] + (write - unique_start);
  }
  adj.resize(write);
  adj.shrink_to_fit();
  g.adj_ = std::move(adj);
  return g;
}

CsrGraph CsrGraph::from_csr(Vertex n, std::vector<uint64_t> row_ptr,
                            std::vector<Vertex> adj) {
  CsrGraph g;
  g.n_ = n;
  g.row_ptr_ = std::move(row_ptr);
  g.adj_ = std::move(adj);
  g.validate();
  return g;
}

void CsrGraph::validate() const {
  NBWP_REQUIRE(row_ptr_.size() == static_cast<size_t>(n_) + 1,
               "graph csr: row_ptr must have n+1 entries");
  NBWP_REQUIRE(row_ptr_.front() == 0, "graph csr: row_ptr must start at 0");
  NBWP_REQUIRE(row_ptr_.back() == adj_.size(),
               "graph csr: row_ptr must end at the adjacency size");
  for (Vertex v = 0; v < n_; ++v) {
    NBWP_REQUIRE(row_ptr_[v] <= row_ptr_[v + 1],
                 "graph csr: row_ptr must be monotone non-decreasing");
    for (uint64_t i = row_ptr_[v]; i < row_ptr_[v + 1]; ++i) {
      NBWP_REQUIRE(adj_[i] < n_, "graph csr: neighbor id out of range");
      NBWP_REQUIRE(adj_[i] != v, "graph csr: self-loop");
      NBWP_REQUIRE(i == row_ptr_[v] || adj_[i - 1] < adj_[i],
                   "graph csr: neighbors must be strictly increasing");
      NBWP_REQUIRE(has_edge(adj_[i], v),
                   "graph csr: missing reverse arc (asymmetric adjacency)");
    }
  }
}

bool CsrGraph::has_edge(Vertex u, Vertex v) const {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> CsrGraph::undirected_edges() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges());
  for (Vertex u = 0; u < n_; ++u)
    for (Vertex v : neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  return edges;
}

}  // namespace nbwp::graph
