// List ranking kernels.
//
// The heterogeneous CC algorithm reproduced here comes from Banerjee &
// Kothapalli [5], "Hybrid Algorithms for List Ranking and Graph Connected
// Components" — list ranking is the other half of that paper and the
// canonical irregular workload with *zero* data parallelism in its
// sequential form.  The CPU ranks a sublist by pointer chasing; the GPU
// runs Wyllie's pointer-jumping algorithm.
//
// A linked list is an array `next` where next[i] is the successor of node
// i and the terminal node points to itself.  rank[i] = distance from i to
// the terminal.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace nbwp::graph {

/// A random singly linked list over n nodes: a random permutation threaded
/// head to tail; returns the `next` array (terminal points to itself).
std::vector<uint32_t> random_linked_list(uint32_t n, Rng& rng);

/// Head (the unique node nothing points to) and terminal of a list.
uint32_t list_head(std::span<const uint32_t> next);
uint32_t list_terminal(std::span<const uint32_t> next);

struct RankResult {
  std::vector<uint64_t> ranks;
  uint64_t iterations = 0;  ///< pointer-jumping rounds (Wyllie)
};

/// Sequential pointer chase from the head — O(n) work, strictly serial.
RankResult rank_sequential(std::span<const uint32_t> next);

/// Wyllie's pointer jumping — O(n log n) work, log n rounds, fully
/// parallel; the GPU-side kernel.
RankResult rank_wyllie(std::span<const uint32_t> next);

/// True when `ranks` is a valid ranking of `next`.
bool ranks_valid(std::span<const uint32_t> next,
                 std::span<const uint64_t> ranks);

/// Split a list for heterogeneous ranking: walk `k` nodes from the head
/// (the CPU's prefix sublist).  The suffix is already self-contained — the
/// list flows head -> terminal, so no pointer rewriting is needed; the
/// hetero algorithm ranks the prefix by its walk position and the suffix
/// with Wyllie, stitching prefix ranks as suffix_length + position.
struct ListSplit {
  std::vector<uint32_t> prefix_order;  ///< first k nodes from the head
  std::vector<uint32_t> suffix_next;   ///< copy of next[] (suffix view)
  uint32_t suffix_head = 0;
};
ListSplit split_list(std::span<const uint32_t> next, uint32_t k);

}  // namespace nbwp::graph
