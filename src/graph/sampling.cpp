#include "graph/sampling.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nbwp::graph {

std::vector<Vertex> uniform_vertex_sample(const CsrGraph& g, Vertex k,
                                          Rng& rng) {
  NBWP_REQUIRE(k <= g.num_vertices(), "sample larger than graph");
  const auto picked = sample_without_replacement(g.num_vertices(), k, rng);
  std::vector<Vertex> out;
  out.reserve(picked.size());
  for (uint64_t v : picked) out.push_back(static_cast<Vertex>(v));
  return out;
}

CsrGraph induced_subgraph(const CsrGraph& g,
                          std::span<const Vertex> sorted_vertices) {
  const auto k = static_cast<Vertex>(sorted_vertices.size());
  std::vector<Edge> edges;
  for (Vertex i = 0; i < k; ++i) {
    const Vertex u = sorted_vertices[i];
    for (Vertex v : g.neighbors(u)) {
      if (v <= u) continue;  // count each undirected edge once
      const auto it = std::lower_bound(sorted_vertices.begin(),
                                       sorted_vertices.end(), v);
      if (it != sorted_vertices.end() && *it == v) {
        edges.emplace_back(
            i, static_cast<Vertex>(it - sorted_vertices.begin()));
      }
    }
  }
  return CsrGraph::from_undirected_edges(k, edges);
}

std::vector<Vertex> importance_vertex_sample(const CsrGraph& g, Vertex k,
                                             Rng& rng) {
  NBWP_REQUIRE(k <= g.num_vertices(), "sample larger than graph");
  // Efraimidis-Spirakis: keep the k largest keys u_i^(1/w_i); weight is
  // degree + 1 so isolated vertices stay sampleable.
  std::vector<std::pair<double, Vertex>> keyed(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const double w = static_cast<double>(g.degree(v)) + 1.0;
    const double u = std::max(rng.uniform_real(), 1e-300);
    keyed[v] = {std::pow(u, 1.0 / w), v};
  }
  std::partial_sort(keyed.begin(), keyed.begin() + k, keyed.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<Vertex> out(k);
  for (Vertex i = 0; i < k; ++i) out[i] = keyed[i].second;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Vertex> contiguous_vertex_sample(const CsrGraph& g, Vertex first,
                                             Vertex k) {
  NBWP_REQUIRE(first + k <= g.num_vertices(),
               "contiguous sample out of range");
  std::vector<Vertex> out(k);
  for (Vertex i = 0; i < k; ++i) out[i] = first + i;
  return out;
}

}  // namespace nbwp::graph
