#include "graph/cc.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "obs/obs.hpp"
#include "parallel/parallel_for.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nbwp::graph {

namespace {

/// Disjoint-set union with path halving and union by size.
class Dsu {
 public:
  explicit Dsu(Vertex n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), Vertex{0});
  }

  Vertex find(Vertex v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }

  bool unite(Vertex a, Vertex b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

 private:
  std::vector<Vertex> parent_;
  std::vector<Vertex> size_;
};

constexpr Vertex kUnvisited = ~Vertex{0};

/// DFS from every unvisited vertex in [first, last), following only edges
/// whose other endpoint is also in [first, last).  Roots are chosen as the
/// smallest vertex of each traversal.
void dfs_range(const CsrGraph& g, Vertex first, Vertex last,
               std::span<Vertex> labels, std::vector<Vertex>& stack) {
  for (Vertex s = first; s < last; ++s) {
    if (labels[s] != kUnvisited) continue;
    labels[s] = s;
    stack.clear();
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (Vertex v : g.neighbors(u)) {
        if (v < first || v >= last || labels[v] != kUnvisited) continue;
        labels[v] = s;
        stack.push_back(v);
      }
    }
  }
}

// ---- cc_adaptive internals (Afforest-style min-hooking union-find) ----
//
// The concurrent phases touch `parent` only through std::atomic_ref with
// relaxed ordering: hooks always attach the larger root under the smaller
// (parent[v] <= v is an invariant, values only ever decrease), so chases
// terminate under concurrent writes and converged roots are component
// minima — which makes the final labels deterministic regardless of team
// size or interleaving.

inline Vertex load_parent(std::span<Vertex> parent, Vertex v) {
  return std::atomic_ref<Vertex>(parent[v]).load(std::memory_order_relaxed);
}

inline Vertex find_root(std::span<Vertex> parent, Vertex v) {
  Vertex p = load_parent(parent, v);
  for (;;) {
    const Vertex gp = load_parent(parent, p);
    if (gp == p) return p;
    p = gp;
  }
}

/// Union the components of u and v, hooking the larger root under the
/// smaller (GAPBS Afforest's Link, arbitration by CAS).
void link_min(std::span<Vertex> parent, Vertex u, Vertex v) {
  Vertex p1 = load_parent(parent, u);
  Vertex p2 = load_parent(parent, v);
  while (p1 != p2) {
    const Vertex high = std::max(p1, p2);
    const Vertex low = std::min(p1, p2);
    std::atomic_ref<Vertex> ph(parent[high]);
    Vertex p_high = ph.load(std::memory_order_relaxed);
    if (p_high == low) break;
    if (p_high == high &&
        ph.compare_exchange_strong(p_high, low, std::memory_order_relaxed))
      break;
    p1 = load_parent(parent, load_parent(parent, high));
    p2 = load_parent(parent, low);
  }
}

/// parent[v] <- root of v for every vertex (parallel; concurrent stores
/// only move pointers further toward roots, so chases stay finite).
void compress_parallel(std::span<Vertex> parent, ThreadPool& pool) {
  parallel_for(pool, 0, static_cast<int64_t>(parent.size()), [&](int64_t v) {
    const Vertex root = find_root(parent, static_cast<Vertex>(v));
    std::atomic_ref<Vertex>(parent[static_cast<size_t>(v)])
        .store(root, std::memory_order_relaxed);
  });
}

struct GiantEstimate {
  Vertex root = 0;
  double fraction = 0.0;
};

/// Mode root among sample_size vertices drawn with replacement.
GiantEstimate sample_giant(std::span<Vertex> parent, uint32_t sample_size,
                           uint64_t seed) {
  const auto n = static_cast<Vertex>(parent.size());
  const uint32_t samples = static_cast<uint32_t>(
      std::min<uint64_t>(sample_size == 0 ? 1 : sample_size, n));
  Rng rng(seed);
  std::vector<Vertex> roots(samples);
  for (auto& r : roots)
    r = find_root(parent, static_cast<Vertex>(rng.uniform(n)));
  std::sort(roots.begin(), roots.end());
  GiantEstimate best;
  size_t i = 0;
  while (i < roots.size()) {
    size_t j = i;
    while (j < roots.size() && roots[j] == roots[i]) ++j;
    if (static_cast<double>(j - i) > best.fraction) {
      best.root = roots[i];
      best.fraction = static_cast<double>(j - i);
    }
    i = j;
  }
  best.fraction /= static_cast<double>(samples);
  return best;
}

}  // namespace

CcResult cc_adaptive(const CsrGraph& g, ThreadPool& pool,
                     const CcAdaptiveOptions& options) {
  obs::Span span("kernel.cc.adaptive");
  const Vertex n = g.num_vertices();
  CcResult r;
  if (n == 0) return r;
  r.labels.resize(n);
  std::iota(r.labels.begin(), r.labels.end(), Vertex{0});
  const std::span<Vertex> parent(r.labels);

  // Phase 1: round k links every vertex to its k-th neighbor.  A couple
  // of rounds is enough to collapse nearly all of a scale-free graph's
  // giant component without touching the full edge list.
  for (uint32_t round = 0; round < options.neighbor_rounds; ++round) {
    parallel_for(pool, 0, n, [&](int64_t u) {
      const auto nbrs = g.neighbors(static_cast<Vertex>(u));
      if (round < nbrs.size())
        link_min(parent, static_cast<Vertex>(u), nbrs[round]);
    });
  }
  compress_parallel(parent, pool);

  const GiantEstimate est =
      sample_giant(parent, options.sample_size, options.seed);
  obs::set_gauge("kernel.cc.adaptive.sampled_fraction", est.fraction);

  if (est.fraction < options.giant_threshold) {
    // No giant intermediate component: the skip phase would save little,
    // so hand the whole graph to label propagation instead.
    obs::count("kernel.cc.adaptive.fallback_lp");
    return cc_label_propagation(g, pool);
  }
  obs::count("kernel.cc.adaptive.giant_skip");

  // Phase 2: only vertices outside the giant component process their
  // remaining edges.  Every skipped edge either has its other endpoint
  // outside the giant (that side links it) or connects two vertices
  // already known to be in the same component.
  const bool metrics = obs::metrics_enabled();
  std::atomic<uint64_t> phase2{0};
  parallel_for_chunks(pool, 0, n, [&](unsigned, int64_t lo, int64_t hi) {
    uint64_t local = 0;
    for (int64_t u = lo; u < hi; ++u) {
      if (load_parent(parent, static_cast<Vertex>(u)) == est.root) continue;
      ++local;
      const auto nbrs = g.neighbors(static_cast<Vertex>(u));
      for (size_t i = options.neighbor_rounds; i < nbrs.size(); ++i)
        link_min(parent, static_cast<Vertex>(u), nbrs[i]);
    }
    if (metrics) phase2.fetch_add(local, std::memory_order_relaxed);
  });
  compress_parallel(parent, pool);
  if (metrics)
    obs::count("kernel.cc.adaptive.phase2_vertices",
               static_cast<double>(phase2.load(std::memory_order_relaxed)));

  r.iterations = options.neighbor_rounds;
  r.num_components = count_components(r.labels);
  return r;
}

CcResult cc_bfs(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  CcResult r;
  r.labels.assign(n, kUnvisited);
  std::vector<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    if (r.labels[s] != kUnvisited) continue;
    ++r.num_components;
    r.labels[s] = s;
    queue.clear();
    queue.push_back(s);
    for (size_t head = 0; head < queue.size(); ++head) {
      const Vertex u = queue[head];
      for (Vertex v : g.neighbors(u)) {
        if (r.labels[v] == kUnvisited) {
          r.labels[v] = s;
          queue.push_back(v);
        }
      }
    }
  }
  return r;
}

CcResult cc_dfs(const CsrGraph& g) {
  const Vertex n = g.num_vertices();
  CcResult r;
  r.labels.assign(n, kUnvisited);
  std::vector<Vertex> stack;
  dfs_range(g, 0, n, r.labels, stack);
  r.num_components = count_components(r.labels);
  return r;
}

CcResult cc_union_find(const CsrGraph& g) {
  obs::Span span("kernel.cc.union_find");
  const Vertex n = g.num_vertices();
  Dsu dsu(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v : g.neighbors(u))
      if (u < v) dsu.unite(u, v);
  CcResult r;
  r.labels.resize(n);
  for (Vertex v = 0; v < n; ++v) r.labels[v] = dsu.find(v);
  r.num_components = count_components(r.labels);
  return r;
}

CcResult cc_chunked_parallel(const CsrGraph& g, ThreadPool& pool,
                             unsigned chunks) {
  obs::Span span("kernel.cc.chunked_parallel");
  const Vertex n = g.num_vertices();
  CcResult r;
  r.labels.assign(n, kUnvisited);
  if (n == 0) return r;
  chunks = std::max(1u, std::min<unsigned>(chunks, n));

  // Phase 1: independent DFS inside each chunk (parallel).
  parallel_for(pool, 0, chunks, [&](int64_t c) {
    const Vertex per = n / chunks, extra = n % chunks;
    const Vertex first =
        static_cast<Vertex>(c) * per + std::min<Vertex>(static_cast<Vertex>(c), extra);
    const Vertex last = first + per + (static_cast<Vertex>(c) < extra ? 1 : 0);
    std::vector<Vertex> stack;
    dfs_range(g, first, last, std::span<Vertex>(r.labels), stack);
  });

  // Phase 2: stitch chunk-crossing edges (sequential union-find on labels).
  Dsu dsu(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (u < v && r.labels[u] != r.labels[v])
        dsu.unite(r.labels[u], r.labels[v]);
    }
  }
  for (Vertex v = 0; v < n; ++v) r.labels[v] = dsu.find(r.labels[v]);
  r.num_components = count_components(r.labels);
  return r;
}

CcResult cc_label_propagation(const CsrGraph& g, ThreadPool& pool,
                              uint64_t max_iters) {
  obs::Span span("kernel.cc.label_propagation");
  const Vertex n = g.num_vertices();
  CcResult r;
  r.labels.resize(n);
  std::iota(r.labels.begin(), r.labels.end(), Vertex{0});
  if (n == 0) return r;
  std::vector<Vertex> next(r.labels);
  std::atomic<bool> changed{true};
  while (changed.load()) {
    if (max_iters != 0 && r.iterations >= max_iters) break;
    changed.store(false);
    parallel_for(pool, 0, n, [&](int64_t u) {
      Vertex best = r.labels[u];
      for (Vertex v : g.neighbors(static_cast<Vertex>(u)))
        best = std::min(best, r.labels[v]);
      next[u] = best;
      if (best != r.labels[u]) changed.store(true, std::memory_order_relaxed);
    });
    std::swap(r.labels, next);
    ++r.iterations;
  }
  r.num_components = count_components(r.labels);
  obs::count("kernel.cc.label_propagation.iterations",
             static_cast<double>(r.iterations));
  return r;
}

CcResult cc_shiloach_vishkin(const CsrGraph& g) {
  obs::Span span("kernel.cc.shiloach_vishkin");
  const Vertex n = g.num_vertices();
  CcResult r;
  r.labels.resize(n);
  std::iota(r.labels.begin(), r.labels.end(), Vertex{0});
  if (n == 0) return r;
  auto& parent = r.labels;

  bool changed = true;
  while (changed) {
    changed = false;
    ++r.iterations;
    // Hook: attach the root of the larger-id side to the smaller label.
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v : g.neighbors(u)) {
        const Vertex pu = parent[u], pv = parent[v];
        if (pu == pv) continue;
        // Hook roots only (CRCW arbitrary-winner semantics; sequentially
        // the last writer wins which is an admissible arbitration).
        if (pv < pu && parent[pu] == pu) {
          parent[pu] = pv;
          changed = true;
        } else if (pu < pv && parent[pv] == pv) {
          parent[pv] = pu;
          changed = true;
        }
      }
    }
    // Pointer jumping (one round: parent <- parent of parent).
    for (Vertex v = 0; v < n; ++v) parent[v] = parent[parent[v]];
  }
  // Final full compression so labels are roots.
  for (Vertex v = 0; v < n; ++v) {
    Vertex root = v;
    while (parent[root] != root) root = parent[root];
    parent[v] = root;
  }
  r.num_components = count_components(r.labels);
  return r;
}

Vertex merge_cross_edges(std::span<Vertex> labels,
                         std::span<const Edge> cross_edges) {
  obs::Span span("kernel.cc.merge_cross_edges");
  obs::count("kernel.cc.cross_edges",
             static_cast<double>(cross_edges.size()));
  const auto n = static_cast<Vertex>(labels.size());
  Dsu dsu(n);
  // Seed the DSU with the existing label structure.
  for (Vertex v = 0; v < n; ++v)
    if (labels[v] != v) dsu.unite(labels[v], v);
  for (const auto& [u, v] : cross_edges) dsu.unite(labels[u], labels[v]);
  for (Vertex v = 0; v < n; ++v) labels[v] = dsu.find(v);
  return count_components(labels);
}

Vertex count_components(std::span<const Vertex> labels) {
  std::vector<Vertex> sorted(labels.begin(), labels.end());
  std::sort(sorted.begin(), sorted.end());
  return static_cast<Vertex>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

bool labels_equivalent(const CsrGraph& g, std::span<const Vertex> labels) {
  const CcResult ref = cc_union_find(g);
  if (labels.size() != ref.labels.size()) return false;
  // Same partition <=> the pairing label -> ref.label is a bijection.
  std::vector<std::pair<Vertex, Vertex>> pairs;
  pairs.reserve(labels.size());
  for (size_t v = 0; v < labels.size(); ++v)
    pairs.emplace_back(labels[v], ref.labels[v]);
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  // Bijection check: each side appears exactly once.
  for (size_t i = 1; i < pairs.size(); ++i)
    if (pairs[i].first == pairs[i - 1].first) return false;
  std::vector<Vertex> seconds;
  seconds.reserve(pairs.size());
  for (const auto& p : pairs) seconds.push_back(p.second);
  std::sort(seconds.begin(), seconds.end());
  return std::unique(seconds.begin(), seconds.end()) == seconds.end();
}

}  // namespace nbwp::graph
