// Connected-components kernels.
//
// The heterogeneous Algorithm 1 runs Shiloach–Vishkin on the GPU side and
// chunked sequential DFS on the CPU side (one chunk per core, Algorithm 1
// line 6), then merges across the cut using the cross edges.  Sequential
// BFS/DFS/union-find serve as verification references; label propagation is
// provided as an alternative multicore kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "parallel/thread_pool.hpp"

namespace nbwp::graph {

struct CcResult {
  std::vector<Vertex> labels;  ///< per-vertex representative (root id)
  Vertex num_components = 0;
  uint64_t iterations = 0;     ///< outer iterations for iterative kernels
};

/// Sequential breadth-first search (reference).
CcResult cc_bfs(const CsrGraph& g);

/// Sequential iterative depth-first search — the per-chunk CPU kernel of
/// Algorithm 1 ("sequential depth-first search algorithm [8]").
CcResult cc_dfs(const CsrGraph& g);

/// Union-find with path halving and union by size (reference).
CcResult cc_union_find(const CsrGraph& g);

/// The CPU side of Algorithm 1: divide the vertex range into `chunks` equal
/// parts, DFS each part over its internal edges in parallel, then stitch
/// chunk-crossing edges with union-find.  Executed on the thread pool.
CcResult cc_chunked_parallel(const CsrGraph& g, ThreadPool& pool,
                             unsigned chunks);

/// Multicore label propagation (min-label flooding, double-buffered);
/// iterations bounded by max_iters when nonzero.
CcResult cc_label_propagation(const CsrGraph& g, ThreadPool& pool,
                              uint64_t max_iters = 0);

/// Tuning for cc_adaptive.
struct CcAdaptiveOptions {
  /// Phase-1 link rounds: round k links every vertex to its k-th neighbor.
  /// Two rounds collapse almost all of a scale-free graph's giant
  /// component (the Afforest observation).
  uint32_t neighbor_rounds = 2;
  /// Vertices sampled (with replacement) to estimate the largest
  /// intermediate component after phase 1.
  uint32_t sample_size = 1024;
  /// Minimum sampled fraction of the mode component for the skip phase to
  /// pay off; below it the kernel falls back to cc_label_propagation.
  /// <= 0 forces the skip phase, > 1 forces the fallback (used by tests).
  double giant_threshold = 0.10;
  /// Seed of the sampling RNG (the estimate, not the output, depends on it).
  uint64_t seed = 0x5eedULL;
};

/// Sampling-based two-phase adaptive CC (Afforest-style), the CPU-side
/// multicore kernel: phase 1 links a few neighbors per vertex with an
/// atomic min-hooking union-find, a cheap sampled estimate then locates
/// the giant intermediate component, and phase 2 only processes the
/// remaining edges of vertices outside it.  When the sample finds no
/// giant component (fraction < giant_threshold) the kernel falls back to
/// cc_label_propagation.  Labels are deterministic (each component is
/// labelled by its minimum vertex id on the afforest path) and
/// labels_equivalent to the serial reference under every team size.
CcResult cc_adaptive(const CsrGraph& g, ThreadPool& pool,
                     const CcAdaptiveOptions& options = {});

/// Shiloach–Vishkin hook + pointer-jumping — the GPU-side kernel.  Runs the
/// PRAM algorithm's rounds sequentially here; `iterations` reports the
/// number of rounds a CRCW machine would execute.
CcResult cc_shiloach_vishkin(const CsrGraph& g);

/// Merge step of Algorithm 1: given per-vertex labels of the whole graph
/// (CPU part labels in [0, n_cpu), GPU part labels shifted to global ids)
/// and the cross edges, unions components across the cut.  Updates labels
/// in place to global representatives and returns the final component
/// count.
Vertex merge_cross_edges(std::span<Vertex> labels,
                         std::span<const Edge> cross_edges);

/// Number of distinct labels (helper used by tests).
Vertex count_components(std::span<const Vertex> labels);

/// True when `labels` assigns equal labels exactly to vertices connected in
/// g (compared against a reference run); used by property tests.
bool labels_equivalent(const CsrGraph& g, std::span<const Vertex> labels);

}  // namespace nbwp::graph
