// Connected-components kernels.
//
// The heterogeneous Algorithm 1 runs Shiloach–Vishkin on the GPU side and
// chunked sequential DFS on the CPU side (one chunk per core, Algorithm 1
// line 6), then merges across the cut using the cross edges.  Sequential
// BFS/DFS/union-find serve as verification references; label propagation is
// provided as an alternative multicore kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "parallel/thread_pool.hpp"

namespace nbwp::graph {

struct CcResult {
  std::vector<Vertex> labels;  ///< per-vertex representative (root id)
  Vertex num_components = 0;
  uint64_t iterations = 0;     ///< outer iterations for iterative kernels
};

/// Sequential breadth-first search (reference).
CcResult cc_bfs(const CsrGraph& g);

/// Sequential iterative depth-first search — the per-chunk CPU kernel of
/// Algorithm 1 ("sequential depth-first search algorithm [8]").
CcResult cc_dfs(const CsrGraph& g);

/// Union-find with path halving and union by size (reference).
CcResult cc_union_find(const CsrGraph& g);

/// The CPU side of Algorithm 1: divide the vertex range into `chunks` equal
/// parts, DFS each part over its internal edges in parallel, then stitch
/// chunk-crossing edges with union-find.  Executed on the thread pool.
CcResult cc_chunked_parallel(const CsrGraph& g, ThreadPool& pool,
                             unsigned chunks);

/// Multicore label propagation (min-label flooding, double-buffered);
/// iterations bounded by max_iters when nonzero.
CcResult cc_label_propagation(const CsrGraph& g, ThreadPool& pool,
                              uint64_t max_iters = 0);

/// Shiloach–Vishkin hook + pointer-jumping — the GPU-side kernel.  Runs the
/// PRAM algorithm's rounds sequentially here; `iterations` reports the
/// number of rounds a CRCW machine would execute.
CcResult cc_shiloach_vishkin(const CsrGraph& g);

/// Merge step of Algorithm 1: given per-vertex labels of the whole graph
/// (CPU part labels in [0, n_cpu), GPU part labels shifted to global ids)
/// and the cross edges, unions components across the cut.  Updates labels
/// in place to global representatives and returns the final component
/// count.
Vertex merge_cross_edges(std::span<Vertex> labels,
                         std::span<const Edge> cross_edges);

/// Number of distinct labels (helper used by tests).
Vertex count_components(std::span<const Vertex> labels);

/// True when `labels` assigns equal labels exactly to vertices connected in
/// g (compared against a reference run); used by property tests.
bool labels_equivalent(const CsrGraph& g, std::span<const Vertex> labels);

}  // namespace nbwp::graph
