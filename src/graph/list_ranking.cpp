#include "graph/list_ranking.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace nbwp::graph {

std::vector<uint32_t> random_linked_list(uint32_t n, Rng& rng) {
  NBWP_REQUIRE(n >= 1, "list needs at least one node");
  const std::vector<uint32_t> order = random_permutation(n, rng);
  std::vector<uint32_t> next(n);
  for (uint32_t i = 0; i + 1 < n; ++i) next[order[i]] = order[i + 1];
  next[order[n - 1]] = order[n - 1];  // terminal self-loop
  return next;
}

uint32_t list_head(std::span<const uint32_t> next) {
  std::vector<uint8_t> pointed(next.size(), 0);
  for (size_t i = 0; i < next.size(); ++i)
    if (next[i] != i) pointed[next[i]] = 1;
  for (uint32_t i = 0; i < next.size(); ++i)
    if (!pointed[i]) return i;
  // Single-node list: the terminal is the head.
  NBWP_REQUIRE(next.size() == 1, "malformed list: no head");
  return 0;
}

uint32_t list_terminal(std::span<const uint32_t> next) {
  for (uint32_t i = 0; i < next.size(); ++i)
    if (next[i] == i) return i;
  throw Error("malformed list: no terminal");
}

RankResult rank_sequential(std::span<const uint32_t> next) {
  RankResult r;
  const auto n = static_cast<uint32_t>(next.size());
  r.ranks.assign(n, 0);
  // Walk once to collect the order, then assign ranks back to front.
  std::vector<uint32_t> order;
  order.reserve(n);
  uint32_t v = list_head(next);
  for (uint32_t steps = 0; steps < n; ++steps) {
    order.push_back(v);
    if (next[v] == v) break;
    v = next[v];
  }
  NBWP_REQUIRE(order.size() == n, "malformed list: walk did not cover it");
  for (uint32_t i = 0; i < n; ++i) r.ranks[order[i]] = n - 1 - i;
  return r;
}

RankResult rank_wyllie(std::span<const uint32_t> next) {
  RankResult r;
  const auto n = static_cast<uint32_t>(next.size());
  r.ranks.assign(n, 0);
  std::vector<uint32_t> succ(next.begin(), next.end());
  for (uint32_t i = 0; i < n; ++i) r.ranks[i] = succ[i] == i ? 0 : 1;
  // Pointer jumping: rank[i] += rank[succ[i]]; succ[i] = succ[succ[i]].
  bool changed = true;
  while (changed) {
    changed = false;
    ++r.iterations;
    std::vector<uint64_t> new_rank(r.ranks);
    std::vector<uint32_t> new_succ(succ);
    for (uint32_t i = 0; i < n; ++i) {
      if (succ[i] != succ[succ[i]]) changed = true;
      new_rank[i] = r.ranks[i] + r.ranks[succ[i]];
      new_succ[i] = succ[succ[i]];
    }
    if (!changed) break;
    r.ranks.swap(new_rank);
    succ.swap(new_succ);
  }
  return r;
}

bool ranks_valid(std::span<const uint32_t> next,
                 std::span<const uint64_t> ranks) {
  if (ranks.size() != next.size()) return false;
  for (size_t i = 0; i < next.size(); ++i) {
    if (next[i] == i) {
      if (ranks[i] != 0) return false;
    } else if (ranks[i] != ranks[next[i]] + 1) {
      return false;
    }
  }
  return true;
}

ListSplit split_list(std::span<const uint32_t> next, uint32_t k) {
  const auto n = static_cast<uint32_t>(next.size());
  NBWP_REQUIRE(k < n, "prefix must leave a non-empty suffix");
  ListSplit s;
  s.prefix_order.reserve(k);
  uint32_t v = list_head(next);
  for (uint32_t i = 0; i < k; ++i) {
    s.prefix_order.push_back(v);
    v = next[v];
  }
  s.suffix_head = v;
  s.suffix_next.assign(next.begin(), next.end());
  return s;
}

}  // namespace nbwp::graph
