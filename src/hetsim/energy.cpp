#include "hetsim/energy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nbwp::hetsim {

double energy_joules(const PowerSpec& power, double cpu_busy_ns,
                     double gpu_busy_ns, double makespan_ns) {
  NBWP_REQUIRE(cpu_busy_ns >= 0 && gpu_busy_ns >= 0 && makespan_ns >= 0,
               "times must be non-negative");
  makespan_ns = std::max({makespan_ns, cpu_busy_ns, gpu_busy_ns});
  const double s = 1e-9;
  return power.cpu_busy_w * cpu_busy_ns * s +
         power.cpu_idle_w * (makespan_ns - cpu_busy_ns) * s +
         power.gpu_busy_w * gpu_busy_ns * s +
         power.gpu_idle_w * (makespan_ns - gpu_busy_ns) * s +
         power.base_w * makespan_ns * s;
}

double energy_delay(const PowerSpec& power, double cpu_busy_ns,
                    double gpu_busy_ns, double makespan_ns) {
  return energy_joules(power, cpu_busy_ns, gpu_busy_ns, makespan_ns) *
         std::max({makespan_ns, cpu_busy_ns, gpu_busy_ns}) * 1e-9;
}

}  // namespace nbwp::hetsim
