#include "hetsim/cpu_device.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nbwp::hetsim {

void CpuDevice::set_slowdown(double factor) {
  NBWP_REQUIRE(factor >= 1.0 && std::isfinite(factor),
               "cpu slowdown factor must be finite and >= 1");
  slowdown_ = factor;
}

double CpuDevice::time_ns(const WorkProfile& p) const {
  const double seq_s = p.seq_ops / spec_.scalar_ops_per_s();

  const double useful_cores =
      std::clamp(p.parallel_items, 1.0, spec_.cores);
  const double comp_s =
      p.ops /
      (spec_.freq_hz * spec_.ops_per_cycle * useful_cores * spec_.parallel_eff);
  const double mem_s = p.bytes_stream / spec_.bw_stream_bps +
                       p.bytes_random / spec_.bw_random_bps;

  const double barrier_s = p.steps * spec_.barrier_ns * 1e-9;
  return (seq_s + std::max(comp_s, mem_s) + barrier_s) * 1e9 * slowdown_;
}

}  // namespace nbwp::hetsim
