// Chrome-trace export of heterogeneous runs.
//
// Writes a RunReport as a chrome://tracing / Perfetto JSON document: one
// track per device, phases as complete events in virtual time.  Handy for
// eyeballing where a threshold actually spends its makespan:
//
//   nbwp_cli run --workload cc --dataset pwtk --trace run.json
#pragma once

#include <iosfwd>
#include <string>

#include "hetsim/report.hpp"

namespace nbwp::hetsim {

/// Serialize the report's phases as a Chrome trace.  Phases named
/// "<x>.cpu" / "<x>.gpu" are laid out concurrently on separate tracks;
/// everything else runs on a "host" track.  `<x>.makespan` rows are
/// bookkeeping and skipped.
void write_chrome_trace(std::ostream& os, const RunReport& report,
                        const std::string& process_name = "nbwp");

void write_chrome_trace_file(const std::string& path,
                             const RunReport& report,
                             const std::string& process_name = "nbwp");

}  // namespace nbwp::hetsim
