// WorkProfile: the structural summary of one kernel execution.
//
// Kernels in this library really execute (their outputs are validated in
// the tests), but *time* comes from a device cost model evaluated on the
// profile the kernel reports.  A profile is a pure function of the input
// partition, which makes virtual time deterministic and lets exhaustive
// threshold sweeps be evaluated analytically without re-executing kernels.
#pragma once

#include <cstdint>
#include <span>

namespace nbwp::hetsim {

struct WorkProfile {
  double ops = 0;             ///< arithmetic operations (flop or int-op)
  double bytes_stream = 0;    ///< sequential / coalesced memory traffic
  double bytes_random = 0;    ///< irregular gathers/scatters (useful bytes)
  double parallel_items = 1;  ///< independent work items available
  double simd_inflation = 1;  ///< >=1; SIMD/warp load-imbalance factor
  double steps = 1;           ///< parallel steps (kernel launches/barriers)
  double seq_ops = 0;         ///< strictly sequential operations

  WorkProfile scaled(double factor) const {
    WorkProfile p = *this;
    p.ops *= factor;
    p.bytes_stream *= factor;
    p.bytes_random *= factor;
    p.seq_ops *= factor;
    return p;
  }
};

/// Warp-level load-imbalance factor for a row-per-thread (item-per-lane)
/// mapping: consecutive `warp_size` items share a warp and the warp runs as
/// long as its slowest lane.  Returns
///   sum over warps (max item work * warp_size) / sum of all item work,
/// which is >= 1 and equals 1 for perfectly uniform items.
double simd_inflation(std::span<const double> item_work, int warp_size = 32);

/// Same, for integer work counts.
double simd_inflation(std::span<const uint64_t> item_work, int warp_size = 32);

/// Imbalance of a contiguous sub-range [first, last) of an item-work array,
/// as used when a kernel processes only a slice of the rows.
double simd_inflation_range(std::span<const uint64_t> item_work, size_t first,
                            size_t last, int warp_size = 32);

}  // namespace nbwp::hetsim
