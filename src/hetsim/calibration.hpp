// Device calibration constants.
//
// The paper's testbed is a dual-socket Intel Xeon E5-2650 (2 x 10 cores @
// 2.34 GHz, 40 SMT threads, 128 GB RAM) and an NVIDIA Tesla K40c (Kepler,
// 15 SMX x 192 cores @ 745 MHz, 1.5 MB L2, GDDR5) connected by PCI Express
// (Section III-B.1).  The constants below are derived from those datasheets
// plus standard sustained-throughput derations.  They are deliberately kept
// in one place: the whole simulator is calibrated here and nowhere else.
//
// Two derived quantities matter for fidelity to the paper:
//  * the single-precision FLOPS ratio GPU/(GPU+CPU) must be ~88%, because
//    the paper's NaiveStatic baseline assigns 88% of the work to the GPU;
//  * the GPU must beat the CPU by a large factor on regular bulk work and
//    lose that advantage on irregular / load-imbalanced work, which is what
//    creates a non-trivial, input-dependent optimal threshold.
#pragma once

namespace nbwp::hetsim {

struct CpuSpec {
  double cores = 20;             ///< 2 sockets x 10 cores
  double freq_hz = 2.34e9;       ///< base clock
  double ops_per_cycle = 12.5;   ///< sustained SIMD ops/cycle/core (AVX FMA,
                                 ///< derated from the 16 sp peak); chosen so
                                 ///< the FLOPS ratio below lands at 88%
  double ipc_scalar = 2.0;       ///< scalar pipeline for sequential code
  double bw_stream_bps = 80e9;   ///< 2 sockets x 4ch DDR3-1600, sustained
  double bw_random_bps = 6e9;    ///< useful bytes under pointer-chasing
                                 ///< (64B lines fetched for ~8B payloads,
                                 ///< partially hidden by caches)
  double barrier_ns = 1500;      ///< fork/join + barrier per parallel region
  double parallel_eff = 0.90;    ///< scaling efficiency of the 20-core team

  double peak_ops_per_s() const { return cores * freq_hz * ops_per_cycle; }
  double scalar_ops_per_s() const { return freq_hz * ipc_scalar; }
};

struct GpuSpec {
  double sm_count = 15;          ///< SMX units
  double cores = 2880;           ///< 15 x 192
  double freq_hz = 745e6;
  double ops_per_cycle = 2.0;    ///< FMA = 2 ops
  double bw_stream_bps = 240e9;  ///< sustained of the 288 GB/s GDDR5 peak
  double bw_random_bps = 30e9;   ///< useful bytes under uncoalesced access
  double launch_ns = 3000;       ///< kernel launch + implicit device sync
                                 ///< (stream-amortized effective cost)
  double full_occupancy_items = 30720;  ///< 2048 resident threads x 15 SMX;
                                        ///< fewer items => underutilization
  double parallel_eff = 0.85;
  double ipc_scalar = 0.5;       ///< a single CUDA thread is very slow
  int warp_size = 32;

  double peak_ops_per_s() const { return cores * freq_hz * ops_per_cycle; }
  double scalar_ops_per_s() const { return freq_hz * ipc_scalar; }
};

struct PcieSpec {
  double bandwidth_bps = 12e9;   ///< PCIe 3.0 x16 sustained
  double latency_ns = 4000;      ///< per-transfer setup cost (pinned,
                                 ///< reused staging buffers)
};

inline constexpr CpuSpec kXeonE5_2650{};
inline constexpr GpuSpec kTeslaK40c{};
inline constexpr PcieSpec kPcie3x16{};

}  // namespace nbwp::hetsim
