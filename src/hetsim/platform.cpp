#include "hetsim/platform.hpp"

#include "util/error.hpp"

namespace nbwp::hetsim {

double Platform::naive_static_gpu_share_pct() const {
  const double g = gpu_.effective_ops_per_s();
  const double c = cpu_.effective_ops_per_s();
  return 100.0 * g / (g + c);
}

void Platform::add_accel(const GpuSpec& spec, const PcieSpec& link) {
  accels_.push_back({GpuDevice(spec), PcieLink(link)});
}

std::vector<double> Platform::device_ops_per_s(size_t devices) const {
  NBWP_REQUIRE(devices >= 1 && devices <= device_count(),
               "platform has fewer devices than requested");
  std::vector<double> ops;
  ops.reserve(devices);
  ops.push_back(cpu_.effective_ops_per_s());
  if (devices >= 2) ops.push_back(gpu_.effective_ops_per_s());
  for (size_t i = 2; i < devices; ++i)
    ops.push_back(accels_[i - 2].device.effective_ops_per_s());
  return ops;
}

void Platform::set_fault_plan(const FaultPlan& plan) {
  cpu_.set_slowdown(plan.cpu_slowdown);
  gpu_.set_slowdown(plan.gpu_slowdown);
  link_.set_degradation(plan.pcie_degradation);
  faults_ = plan.empty() ? nullptr : std::make_shared<FaultInjector>(plan);
}

const Platform& Platform::reference() {
  static const Platform platform;
  return platform;
}

}  // namespace nbwp::hetsim
