#include "hetsim/platform.hpp"

namespace nbwp::hetsim {

double Platform::naive_static_gpu_share_pct() const {
  const double g = gpu_.peak_ops_per_s();
  const double c = cpu_.peak_ops_per_s();
  return 100.0 * g / (g + c);
}

const Platform& Platform::reference() {
  static const Platform platform;
  return platform;
}

}  // namespace nbwp::hetsim
