#include "hetsim/platform.hpp"

namespace nbwp::hetsim {

double Platform::naive_static_gpu_share_pct() const {
  const double g = gpu_.effective_ops_per_s();
  const double c = cpu_.effective_ops_per_s();
  return 100.0 * g / (g + c);
}

void Platform::set_fault_plan(const FaultPlan& plan) {
  cpu_.set_slowdown(plan.cpu_slowdown);
  gpu_.set_slowdown(plan.gpu_slowdown);
  link_.set_degradation(plan.pcie_degradation);
  faults_ = plan.empty() ? nullptr : std::make_shared<FaultInjector>(plan);
}

const Platform& Platform::reference() {
  static const Platform platform;
  return platform;
}

}  // namespace nbwp::hetsim
