// Multicore CPU cost model (roofline with a scalar tail and barrier costs).
#pragma once

#include <string>

#include "hetsim/calibration.hpp"
#include "hetsim/work_profile.hpp"

namespace nbwp::hetsim {

class CpuDevice {
 public:
  explicit CpuDevice(CpuSpec spec = kXeonE5_2650) : spec_(spec) {}

  const CpuSpec& spec() const { return spec_; }
  std::string name() const { return "cpu"; }

  /// Peak single-precision throughput (used by the NaiveStatic baseline).
  double peak_ops_per_s() const { return spec_.peak_ops_per_s(); }

  /// Peak throughput divided by any injected slowdown (hetsim/faults.hpp);
  /// what a ratio-based static split should believe about a degraded core.
  double effective_ops_per_s() const { return peak_ops_per_s() / slowdown_; }

  /// Fault-injected slowdown factor (>= 1); multiplies every kernel time.
  void set_slowdown(double factor);
  double slowdown() const { return slowdown_; }

  /// Virtual nanoseconds to execute a kernel with the given profile.
  ///
  /// time = seq_ops/scalar_rate
  ///      + max(parallel compute, memory)            (roofline)
  ///      + steps * barrier cost.
  /// Parallel compute uses min(cores, parallel_items) cores at the team's
  /// scaling efficiency.  simd_inflation is interpreted as vector-lane
  /// imbalance and applied to the compute term only: CPU cores run rows
  /// independently, so row-length variance does not stall whole warps the
  /// way it does on the GPU (this asymmetry is the heart of the model).
  double time_ns(const WorkProfile& p) const;

 private:
  CpuSpec spec_;
  double slowdown_ = 1.0;
};

}  // namespace nbwp::hetsim
