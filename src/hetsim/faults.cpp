#include "hetsim/faults.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/strfmt.hpp"

namespace nbwp::hetsim {

bool FaultPlan::empty() const {
  return cpu_slowdown == 1.0 && gpu_slowdown == 1.0 &&
         pcie_degradation == 1.0 && gpu_fail_at_kernel < 0 &&
         gpu_fail_after_ms < 0 && gpu_transient_rate == 0.0 &&
         noise_spike_rate == 0.0;
}

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

double parse_double(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  NBWP_REQUIRE(end != value.c_str() && *end == '\0' && std::isfinite(v),
               "fault plan: bad numeric value for '" + key + "': " + value);
  return v;
}

int64_t parse_int(const std::string& key, const std::string& value) {
  const double v = parse_double(key, value);
  NBWP_REQUIRE(v == std::floor(v),
               "fault plan: '" + key + "' wants an integer, got " + value);
  return static_cast<int64_t>(v);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") return plan;
  for (const std::string& raw : split(spec, ',')) {
    if (raw.empty()) continue;
    std::string key = raw;
    std::string value;
    bool at_form = false;
    if (auto eq = raw.find('='); eq != std::string::npos) {
      key = raw.substr(0, eq);
      value = raw.substr(eq + 1);
    } else if (auto at = raw.find('@'); at != std::string::npos) {
      key = raw.substr(0, at);
      value = raw.substr(at + 1);
      at_form = true;
    }
    if (key == "gpu-hard" && at_form) {
      plan.gpu_fail_at_kernel = parse_int(key, value);
      plan.gpu_fail_transient = false;
      NBWP_REQUIRE(plan.gpu_fail_at_kernel >= 0,
                   "fault plan: gpu-hard@K wants K >= 0");
    } else if (key == "gpu-transient" && at_form) {
      plan.gpu_fail_at_kernel = parse_int(key, value);
      plan.gpu_fail_transient = true;
      NBWP_REQUIRE(plan.gpu_fail_at_kernel >= 0,
                   "fault plan: gpu-transient@K wants K >= 0");
    } else if (key == "gpu-hard-after") {
      plan.gpu_fail_after_ms = parse_double(key, value);
      NBWP_REQUIRE(plan.gpu_fail_after_ms >= 0,
                   "fault plan: gpu-hard-after wants ms >= 0");
    } else if (key == "gpu-transient-rate") {
      plan.gpu_transient_rate = parse_double(key, value);
      NBWP_REQUIRE(
          plan.gpu_transient_rate >= 0 && plan.gpu_transient_rate <= 1,
          "fault plan: gpu-transient-rate wants a probability in [0,1]");
    } else if (key == "gpu-slow") {
      plan.gpu_slowdown = parse_double(key, value);
      NBWP_REQUIRE(plan.gpu_slowdown >= 1.0,
                   "fault plan: gpu-slow wants a factor >= 1");
    } else if (key == "cpu-slow") {
      plan.cpu_slowdown = parse_double(key, value);
      NBWP_REQUIRE(plan.cpu_slowdown >= 1.0,
                   "fault plan: cpu-slow wants a factor >= 1");
    } else if (key == "pcie-degrade") {
      plan.pcie_degradation = parse_double(key, value);
      NBWP_REQUIRE(plan.pcie_degradation >= 1.0,
                   "fault plan: pcie-degrade wants a factor >= 1");
    } else if (key == "noise-spikes") {
      plan.noise_spike_rate = parse_double(key, value);
      NBWP_REQUIRE(plan.noise_spike_rate >= 0 && plan.noise_spike_rate <= 1,
                   "fault plan: noise-spikes wants a probability in [0,1]");
    } else if (key == "noise-factor") {
      plan.noise_spike_factor = parse_double(key, value);
      NBWP_REQUIRE(plan.noise_spike_factor >= 1.0,
                   "fault plan: noise-factor wants a factor >= 1");
    } else if (key == "retries") {
      const int64_t n = parse_int(key, value);
      NBWP_REQUIRE(n >= 0, "fault plan: retries wants a count >= 0");
      plan.gpu_retry_limit = static_cast<int>(n);
    } else if (key == "retry-backoff-us") {
      plan.retry_backoff_base_us = parse_double(key, value);
      NBWP_REQUIRE(plan.retry_backoff_base_us >= 0,
                   "fault plan: retry-backoff-us wants us >= 0");
    } else if (key == "seed") {
      plan.seed = static_cast<uint64_t>(parse_int(key, value));
    } else {
      throw Error("fault plan: unknown directive '" + raw +
                  "' (see FaultPlan::parse for the grammar)");
    }
  }
  return plan;
}

std::string FaultPlan::summary() const {
  if (empty()) return "healthy";
  std::ostringstream os;
  const char* sep = "";
  auto item = [&](const std::string& s) {
    os << sep << s;
    sep = ", ";
  };
  if (gpu_fail_at_kernel >= 0)
    item(std::string(gpu_fail_transient ? "transient" : "hard") +
         " gpu fault at kernel #" + std::to_string(gpu_fail_at_kernel));
  if (gpu_fail_after_ms >= 0)
    item(strfmt("hard gpu fault after %.3g virtual ms", gpu_fail_after_ms));
  if (gpu_transient_rate > 0)
    item(strfmt("transient gpu rate %.3g", gpu_transient_rate));
  if (gpu_slowdown != 1.0) item(strfmt("gpu slowdown %.3gx", gpu_slowdown));
  if (cpu_slowdown != 1.0) item(strfmt("cpu slowdown %.3gx", cpu_slowdown));
  if (pcie_degradation != 1.0)
    item(strfmt("pcie degraded %.3gx", pcie_degradation));
  if (noise_spike_rate > 0)
    item(strfmt("noise spikes %.3g@%.3gx", noise_spike_rate,
                noise_spike_factor));
  if (gpu_retry_limit != 1 || retry_backoff_base_us != 50.0)
    item(strfmt("retry %dx backoff %.3g us", gpu_retry_limit,
                retry_backoff_base_us));
  return os.str();
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(plan), rng_(plan.seed) {}

void FaultInjector::gpu_kernel(const char* what, double expected_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t index = gpu_invocations_++;
  if (gpu_dead_) {
    throw DeviceFault("gpu", /*transient=*/false,
                      std::string("gpu offline (hard fault) at '") + what +
                          "' invocation #" + std::to_string(index));
  }
  const bool scheduled =
      plan_.gpu_fail_at_kernel >= 0 &&
      index == static_cast<uint64_t>(plan_.gpu_fail_at_kernel);
  if (scheduled && !plan_.gpu_fail_transient) {
    gpu_dead_ = true;
    obs::count("robustness.fault.gpu.hard");
    throw DeviceFault("gpu", /*transient=*/false,
                      std::string("injected hard gpu fault at '") + what +
                          "' invocation #" + std::to_string(index));
  }
  if (scheduled ||
      (plan_.gpu_transient_rate > 0 && rng_.bernoulli(plan_.gpu_transient_rate))) {
    obs::count("robustness.fault.gpu.transient");
    throw DeviceFault("gpu", /*transient=*/true,
                      std::string("injected transient gpu fault at '") + what +
                          "' invocation #" + std::to_string(index));
  }
  if (plan_.gpu_fail_after_ms >= 0 &&
      gpu_busy_ns_ > plan_.gpu_fail_after_ms * 1e6) {
    gpu_dead_ = true;
    obs::count("robustness.fault.gpu.hard");
    throw DeviceFault(
        "gpu", /*transient=*/false,
        strfmt("injected hard gpu fault at '%s': virtual clock %.3g ms past "
               "the %.3g ms failure point",
               what, gpu_busy_ns_ / 1e6, plan_.gpu_fail_after_ms));
  }
  if (expected_ns > 0) gpu_busy_ns_ += expected_ns;
}

bool FaultInjector::gpu_dead() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gpu_dead_;
}

double FaultInjector::noise_sigma_factor() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (plan_.noise_spike_rate <= 0) return 1.0;
  return rng_.bernoulli(plan_.noise_spike_rate) ? plan_.noise_spike_factor
                                                : 1.0;
}

uint64_t FaultInjector::gpu_invocations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gpu_invocations_;
}

double FaultInjector::gpu_busy_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return gpu_busy_ns_ / 1e6;
}

namespace {

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double FaultInjector::retry_backoff_ns(int attempt) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const int k = attempt < 1 ? 1 : attempt;
  // gpu_invocations_ already counts the failed attempt, so the hash input
  // is stable from the catch block that computes the backoff.
  const uint64_t h = mix64(plan_.seed ^ mix64(gpu_invocations_) ^
                           mix64(static_cast<uint64_t>(k) * 0x9e37ULL));
  const double jitter =
      0.5 + static_cast<double>(h >> 11) * 0x1.0p-53;  // [0.5, 1.5)
  return plan_.retry_backoff_base_us * 1e3 *
         static_cast<double>(1ULL << (k - 1 > 62 ? 62 : k - 1)) * jitter;
}

void FaultInjector::charge_backoff(double ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ns > 0) backoff_ns_ += ns;
}

double FaultInjector::backoff_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return backoff_ns_ / 1e6;
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_.reseed(plan_.seed);
  gpu_invocations_ = 0;
  gpu_busy_ns_ = 0.0;
  backoff_ns_ = 0.0;
  gpu_dead_ = false;
}

}  // namespace nbwp::hetsim
