// Energy model for heterogeneous runs.
//
// Wang & Ren [30] (related work) partition for power efficiency rather
// than speed.  This model prices a run from its per-device busy times:
// each device burns busy power while working and idle power while waiting
// for the other to finish; the host platform draws a constant floor.
// Combined with the analytic threshold sweeps it yields energy-optimal
// thresholds to set against the time-optimal ones
// (bench/extra_energy).
#pragma once

namespace nbwp::hetsim {

struct PowerSpec {
  // Xeon E5-2650 pair: ~95 W TDP each, deep idle well below.
  double cpu_busy_w = 190.0;
  double cpu_idle_w = 50.0;
  // Tesla K40c: 235 W board power, ~20 W idle.
  double gpu_busy_w = 235.0;
  double gpu_idle_w = 20.0;
  // Host floor (board, memory, disks) drawn for the whole makespan.
  double base_w = 80.0;
};

inline constexpr PowerSpec kReferencePower{};

/// Energy in joules for a run where the CPU is busy `cpu_busy_ns`, the GPU
/// `gpu_busy_ns`, and the whole run spans `makespan_ns` (>= both).
double energy_joules(const PowerSpec& power, double cpu_busy_ns,
                     double gpu_busy_ns, double makespan_ns);

/// Energy-delay product (J*s) — the usual compromise metric.
double energy_delay(const PowerSpec& power, double cpu_busy_ns,
                    double gpu_busy_ns, double makespan_ns);

}  // namespace nbwp::hetsim
