// Platform: one CPU + one GPU + the PCIe link between them.
//
// This is the "simple heterogeneous system with one CPU attached to one
// GPU" of Section II.  The framework itself treats thresholds as scalars;
// extending to more devices would turn them into vectors (the paper notes
// the same).
#pragma once

#include <memory>

#include "hetsim/cpu_device.hpp"
#include "hetsim/faults.hpp"
#include "hetsim/gpu_device.hpp"
#include "hetsim/pcie_link.hpp"
#include "hetsim/report.hpp"

namespace nbwp::hetsim {

class Platform {
 public:
  Platform() = default;
  Platform(CpuSpec cpu, GpuSpec gpu, PcieSpec pcie)
      : cpu_(cpu), gpu_(gpu), link_(pcie) {}

  const CpuDevice& cpu() const { return cpu_; }
  const GpuDevice& gpu() const { return gpu_; }
  const PcieLink& link() const { return link_; }

  unsigned cpu_threads() const {
    return static_cast<unsigned>(cpu_.spec().cores);
  }

  /// The NaiveStatic partition: percentage of work routed to the GPU based
  /// purely on the peak-FLOPS ratio of the two devices (Section III-B.2
  /// reports ~88% for the paper's testbed).  Under an injected slowdown the
  /// ratio uses the devices' effective (degraded) throughput, so the static
  /// split shifts toward the healthy device.
  double naive_static_gpu_share_pct() const;

  /// Install a fault plan: slowdown factors are applied to the device cost
  /// models immediately and an injector is created for failure/noise
  /// events.  An empty plan removes any injector.  Copies of this Platform
  /// share the injector state (invocation counter, virtual GPU clock), so
  /// estimation probes and execution kernels see one device timeline.
  void set_fault_plan(const FaultPlan& plan);

  /// The active fault injector, or nullptr for a healthy platform.
  FaultInjector* faults() const { return faults_.get(); }

  /// Default platform shared by tests/benches (paper calibration).
  static const Platform& reference();

 private:
  CpuDevice cpu_;
  GpuDevice gpu_;
  PcieLink link_;
  std::shared_ptr<FaultInjector> faults_;
};

}  // namespace nbwp::hetsim
