// Platform: one CPU + one GPU + the PCIe link between them, optionally
// extended with additional accelerators.
//
// The base pair is the "simple heterogeneous system with one CPU attached
// to one GPU" of Section II.  The paper notes that more devices turn the
// scalar threshold into a vector; add_accel() grows the device list for
// exactly that: K-way PartitionDescriptors (core/partition_descriptor.hpp)
// address device 0 = CPU, device 1 = the primary GPU, devices 2.. = the
// accelerators in insertion order, each with its own host link.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "hetsim/cpu_device.hpp"
#include "hetsim/faults.hpp"
#include "hetsim/gpu_device.hpp"
#include "hetsim/pcie_link.hpp"
#include "hetsim/report.hpp"

namespace nbwp::hetsim {

/// One extra offload device beyond the primary GPU, with its own host
/// link.  Accelerators share the GPU cost model (GpuDevice); a differently
/// calibrated GpuSpec makes one slower, smaller, or bandwidth-starved.
struct AccelDevice {
  GpuDevice device;
  PcieLink link;
};

class Platform {
 public:
  Platform() = default;
  Platform(CpuSpec cpu, GpuSpec gpu, PcieSpec pcie)
      : cpu_(cpu), gpu_(gpu), link_(pcie) {}

  const CpuDevice& cpu() const { return cpu_; }
  const GpuDevice& gpu() const { return gpu_; }
  const PcieLink& link() const { return link_; }

  /// Append an extra accelerator (descriptor device index 2 + #accels so
  /// far) with its own host link.
  void add_accel(const GpuSpec& spec, const PcieSpec& link);

  /// CPU + primary GPU + accelerators.
  size_t device_count() const { return 2 + accels_.size(); }
  const std::vector<AccelDevice>& accels() const { return accels_; }
  const AccelDevice& accel(size_t i) const { return accels_.at(i); }

  /// Effective (slowdown-adjusted) throughput of the first `devices`
  /// devices in descriptor order — the weight vector behind the K-way
  /// naive-static shares.
  std::vector<double> device_ops_per_s(size_t devices) const;

  unsigned cpu_threads() const {
    return static_cast<unsigned>(cpu_.spec().cores);
  }

  /// The NaiveStatic partition: percentage of work routed to the GPU based
  /// purely on the peak-FLOPS ratio of the two devices (Section III-B.2
  /// reports ~88% for the paper's testbed).  Under an injected slowdown the
  /// ratio uses the devices' effective (degraded) throughput, so the static
  /// split shifts toward the healthy device.
  double naive_static_gpu_share_pct() const;

  /// Install a fault plan: slowdown factors are applied to the device cost
  /// models immediately and an injector is created for failure/noise
  /// events.  An empty plan removes any injector.  Copies of this Platform
  /// share the injector state (invocation counter, virtual GPU clock), so
  /// estimation probes and execution kernels see one device timeline.
  void set_fault_plan(const FaultPlan& plan);

  /// The active fault injector, or nullptr for a healthy platform.
  FaultInjector* faults() const { return faults_.get(); }

  /// Default platform shared by tests/benches (paper calibration).
  static const Platform& reference();

 private:
  CpuDevice cpu_;
  GpuDevice gpu_;
  PcieLink link_;
  std::vector<AccelDevice> accels_;
  std::shared_ptr<FaultInjector> faults_;
};

}  // namespace nbwp::hetsim
