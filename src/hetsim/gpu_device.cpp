#include "hetsim/gpu_device.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace nbwp::hetsim {

void GpuDevice::set_slowdown(double factor) {
  NBWP_REQUIRE(factor >= 1.0 && std::isfinite(factor),
               "gpu slowdown factor must be finite and >= 1");
  slowdown_ = factor;
}

double GpuDevice::time_ns(const WorkProfile& p) const {
  const double launch_s = p.steps * spec_.launch_ns * 1e-9;
  const double seq_s = p.seq_ops / spec_.scalar_ops_per_s();

  const double comp_s =
      p.ops / (spec_.peak_ops_per_s() * spec_.parallel_eff);
  const double mem_s = p.bytes_stream / spec_.bw_stream_bps +
                       p.bytes_random / spec_.bw_random_bps;

  // Underutilization: a grid smaller than the resident-thread capacity
  // leaves SMX units partially idle.  The penalty is bounded (floor 0.55):
  // tiny kernels are launch-latency dominated rather than arbitrarily slow.
  const double occupancy = std::clamp(
      p.parallel_items / spec_.full_occupancy_items, 0.55, 1.0);

  const double body_s =
      std::max(comp_s, mem_s) * std::max(1.0, p.simd_inflation) / occupancy;
  return (launch_s + body_s + seq_s) * 1e9 * slowdown_;
}

}  // namespace nbwp::hetsim
