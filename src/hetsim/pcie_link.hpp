// PCI Express transfer cost model.
#pragma once

#include "hetsim/calibration.hpp"

namespace nbwp::hetsim {

class PcieLink {
 public:
  explicit PcieLink(PcieSpec spec = kPcie3x16) : spec_(spec) {}

  const PcieSpec& spec() const { return spec_; }

  /// Virtual nanoseconds to move `bytes` across the link (either direction).
  double transfer_ns(double bytes) const;

  /// Fault-injected bandwidth degradation (>= 1): effective bandwidth is
  /// divided by this factor, modelling a link that trained down to fewer
  /// lanes or a lower generation.
  void set_degradation(double factor);
  double degradation() const { return degradation_; }

 private:
  PcieSpec spec_;
  double degradation_ = 1.0;
};

}  // namespace nbwp::hetsim
