// PCI Express transfer cost model.
#pragma once

#include "hetsim/calibration.hpp"

namespace nbwp::hetsim {

class PcieLink {
 public:
  explicit PcieLink(PcieSpec spec = kPcie3x16) : spec_(spec) {}

  const PcieSpec& spec() const { return spec_; }

  /// Virtual nanoseconds to move `bytes` across the link (either direction).
  double transfer_ns(double bytes) const;

 private:
  PcieSpec spec_;
};

}  // namespace nbwp::hetsim
