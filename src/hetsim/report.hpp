// RunReport: a named breakdown of one heterogeneous run in virtual time.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace nbwp::hetsim {

struct Phase {
  std::string name;
  double ns = 0;
};

class RunReport {
 public:
  /// Appends a phase executed after everything recorded so far.
  void add_phase(std::string name, double ns);

  /// Appends a phase that overlaps CPU and GPU work: contributes
  /// max(cpu_ns, gpu_ns) to the total, and records both sides.
  void add_overlapped_phase(std::string name, double cpu_ns, double gpu_ns);

  double total_ns() const { return total_ns_; }
  double total_ms() const { return total_ns_ / 1e6; }
  const std::vector<Phase>& phases() const { return phases_; }

  /// Virtual time of the named phase (0 if absent; sums duplicates).
  double phase_ns(const std::string& name) const;

  /// Free-form result counters ("components", "nnz_C", ...).
  void set_counter(const std::string& name, double value);
  double counter(const std::string& name) const;  // 0 if absent
  const std::map<std::string, double>& counters() const { return counters_; }

  /// Merge another report in sequence (phases appended, counters summed).
  void append(const RunReport& other);

  std::string summary() const;

 private:
  double total_ns_ = 0;
  std::vector<Phase> phases_;
  std::map<std::string, double> counters_;
};

}  // namespace nbwp::hetsim
