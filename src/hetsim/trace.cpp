#include "hetsim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strfmt.hpp"

namespace nbwp::hetsim {

namespace {
bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

void write_chrome_trace(std::ostream& os, const RunReport& report,
                        const std::string& process_name) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& name, int tid, double start_us,
                  double dur_us) {
    if (!first) os << ',';
    first = false;
    os << strfmt(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f}",
        json_escape(name).c_str(), tid, start_us, dur_us);
  };

  // Track ids: 0 host, 1 cpu, 2 gpu.
  double host_clock_us = 0;
  // Overlapped groups advance the host clock by their makespan; their cpu
  // and gpu rows start together at the group's start time.
  double group_start_us = 0;
  double group_max_us = 0;
  bool in_group = false;
  for (const auto& phase : report.phases()) {
    const double dur_us = phase.ns / 1e3;
    if (ends_with(phase.name, ".cpu")) {
      group_start_us = host_clock_us;
      group_max_us = dur_us;
      in_group = true;
      emit(phase.name, 1, group_start_us, dur_us);
    } else if (ends_with(phase.name, ".gpu")) {
      group_max_us = std::max(group_max_us, dur_us);
      emit(phase.name, 2, group_start_us, dur_us);
    } else if (ends_with(phase.name, ".makespan")) {
      if (in_group) {
        host_clock_us = group_start_us + group_max_us;
        in_group = false;
      }
    } else {
      emit(phase.name, 0, host_clock_us, dur_us);
      host_clock_us += dur_us;
    }
  }
  os << strfmt(
      "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"process\":\"%s\"}}",
      json_escape(process_name).c_str());
}

void write_chrome_trace_file(const std::string& path,
                             const RunReport& report,
                             const std::string& process_name) {
  std::ofstream f(path);
  NBWP_REQUIRE(f.good(), "cannot open trace output " + path);
  write_chrome_trace(f, report, process_name);
}

}  // namespace nbwp::hetsim
