// SIMT GPU cost model (Kepler-class).
//
// Captures the four GPU effects the paper's workloads exercise:
//  * huge aggregate throughput on regular bulk work,
//  * warp-level load imbalance (simd_inflation) stalling whole warps on
//    skewed row lengths — the reason scale-free matrices favour HH-CPU,
//  * severe penalty for uncoalesced (random) memory access,
//  * per-kernel-launch latency, which taxes iterative algorithms such as
//    Shiloach-Vishkin, and underutilization when the grid is small — the
//    reason very small samples are cheap but noisy to search.
#pragma once

#include <string>

#include "hetsim/calibration.hpp"
#include "hetsim/work_profile.hpp"

namespace nbwp::hetsim {

class GpuDevice {
 public:
  explicit GpuDevice(GpuSpec spec = kTeslaK40c) : spec_(spec) {}

  const GpuSpec& spec() const { return spec_; }
  std::string name() const { return "gpu"; }

  double peak_ops_per_s() const { return spec_.peak_ops_per_s(); }

  /// Peak throughput divided by any injected slowdown (hetsim/faults.hpp);
  /// what a ratio-based static split should believe about a degraded card.
  double effective_ops_per_s() const { return peak_ops_per_s() / slowdown_; }

  /// Fault-injected slowdown factor (>= 1); multiplies every kernel time.
  void set_slowdown(double factor);
  double slowdown() const { return slowdown_; }

  /// Virtual nanoseconds to execute a kernel with the given profile.
  ///
  /// time = steps * launch latency
  ///      + max(compute, memory) * simd_inflation / occupancy
  ///      + seq_ops at single-thread speed.
  /// occupancy = clamp(parallel_items / full_occupancy_items, ., 1): a grid
  /// smaller than the resident-thread capacity leaves SMX units idle.
  double time_ns(const WorkProfile& p) const;

 private:
  GpuSpec spec_;
  double slowdown_ = 1.0;
};

}  // namespace nbwp::hetsim
