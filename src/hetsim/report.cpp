#include "hetsim/report.hpp"

#include <algorithm>

#include "util/strfmt.hpp"

namespace nbwp::hetsim {

void RunReport::add_phase(std::string name, double ns) {
  total_ns_ += ns;
  phases_.push_back({std::move(name), ns});
}

void RunReport::add_overlapped_phase(std::string name, double cpu_ns,
                                     double gpu_ns) {
  const double ns = std::max(cpu_ns, gpu_ns);
  total_ns_ += ns;
  phases_.push_back({name + ".cpu", cpu_ns});
  phases_.push_back({name + ".gpu", gpu_ns});
  phases_.push_back({name + ".makespan", ns});
  // Only the makespan entry contributes to total (added above once).
}

double RunReport::phase_ns(const std::string& name) const {
  double ns = 0;
  for (const auto& p : phases_)
    if (p.name == name) ns += p.ns;
  return ns;
}

void RunReport::set_counter(const std::string& name, double value) {
  counters_[name] = value;
}

double RunReport::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

void RunReport::append(const RunReport& other) {
  total_ns_ += other.total_ns_;
  phases_.insert(phases_.end(), other.phases_.begin(), other.phases_.end());
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

std::string RunReport::summary() const {
  std::string s = strfmt("total %.3f ms", total_ms());
  for (const auto& p : phases_)
    s += strfmt(" | %s %.3f ms", p.name.c_str(), p.ns / 1e6);
  return s;
}

}  // namespace nbwp::hetsim
