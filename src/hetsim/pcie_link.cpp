#include "hetsim/pcie_link.hpp"

namespace nbwp::hetsim {

double PcieLink::transfer_ns(double bytes) const {
  if (bytes <= 0) return 0.0;
  return spec_.latency_ns + bytes / spec_.bandwidth_bps * 1e9;
}

}  // namespace nbwp::hetsim
