#include "hetsim/pcie_link.hpp"

#include <cmath>

#include "util/error.hpp"

namespace nbwp::hetsim {

void PcieLink::set_degradation(double factor) {
  NBWP_REQUIRE(factor >= 1.0 && std::isfinite(factor),
               "pcie degradation factor must be finite and >= 1");
  degradation_ = factor;
}

double PcieLink::transfer_ns(double bytes) const {
  if (bytes <= 0) return 0.0;
  return spec_.latency_ns +
         bytes / (spec_.bandwidth_bps / degradation_) * 1e9;
}

}  // namespace nbwp::hetsim
