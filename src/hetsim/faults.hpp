// Fault injection for the simulated heterogeneous platform.
//
// A production partitioner cannot assume the devices behave: GPUs drop off
// the bus, kernels fail transiently, PCIe links train down to fewer lanes,
// and timing measurements spike under interference (the heterogeneous-
// clusters literature reports device-performance variability as the main
// practical obstacle to static splits).  A FaultPlan describes such
// adversity declaratively; the Platform carries a FaultInjector built from
// it, and every case study can then be exercised under faults without
// touching kernel code:
//
//   * per-device slowdown factors (CPU, GPU) and PCIe bandwidth
//     degradation, applied inside the device cost models;
//   * transient and hard GPU failures, scheduled either by kernel
//     invocation index or by a point on the GPU's virtual clock;
//   * a per-invocation transient-failure rate and timing-noise spikes,
//     drawn from a dedicated seeded Rng so every run is reproducible.
//
// Consumers: the hetalg executors gate each GPU kernel through
// FaultInjector::gpu_kernel (retry-then-reroute, see hetalg/gpu_guard.hpp)
// and the guarded estimation entry point (core/robust_estimate.hpp) gates
// its identify probes the same way.  All injected events are counted under
// the robustness.* metric namespace (docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace nbwp::hetsim {

/// Thrown by the injector when the plan schedules a failure for the
/// current device operation.  Transient faults succeed when retried; a
/// hard fault marks the device dead for the rest of the run.
class DeviceFault : public Error {
 public:
  DeviceFault(std::string device, bool transient, const std::string& what)
      : Error(what), device_(std::move(device)), transient_(transient) {}

  const std::string& device() const { return device_; }
  bool transient() const { return transient_; }

 private:
  std::string device_;
  bool transient_;
};

/// Declarative description of the adversity to inject.  Default-constructed
/// plans are empty (healthy platform).
struct FaultPlan {
  uint64_t seed = 0xFA117;     ///< stream for rate draws and noise spikes
  double cpu_slowdown = 1.0;   ///< >= 1: CPU kernel times multiplied
  double gpu_slowdown = 1.0;   ///< >= 1: GPU kernel times multiplied
  double pcie_degradation = 1.0;  ///< >= 1: PCIe bandwidth divided

  /// Fail the GPU kernel invocation with this 0-based index (-1: never).
  /// Hard unless `gpu_fail_transient`; a hard fault kills the device for
  /// every later invocation.
  int64_t gpu_fail_at_kernel = -1;
  bool gpu_fail_transient = false;

  /// Hard-fail the GPU once its cumulative virtual busy time exceeds this
  /// wall-clock point (< 0: never).
  double gpu_fail_after_ms = -1.0;

  /// Per-invocation transient failure probability (deterministic per seed).
  double gpu_transient_rate = 0.0;

  /// Timing-noise spikes: with this probability an estimation probe's
  /// measurement noise sigma is multiplied by `noise_spike_factor`.
  double noise_spike_rate = 0.0;
  double noise_spike_factor = 10.0;

  /// Retry policy for the executors' retry-then-reroute path
  /// (hetalg/gpu_guard.hpp): how many times a faulted kernel is retried
  /// before rerouting, and the base of the exponential backoff between
  /// attempts.  Retry `k` (1-based) waits base * 2^(k-1) * jitter with a
  /// deterministic seeded jitter in [0.5, 1.5).
  int gpu_retry_limit = 1;
  double retry_backoff_base_us = 50.0;

  bool empty() const;

  /// Parse a comma-separated plan spec, e.g.
  ///   "gpu-hard@2"              hard-fail GPU kernel #2
  ///   "gpu-transient@0"         transient fault on kernel #0
  ///   "gpu-hard-after=5"        hard fault after 5 virtual ms of GPU work
  ///   "gpu-transient-rate=0.1"  10% transient failures per invocation
  ///   "gpu-slow=3,pcie-degrade=4,noise-spikes=0.2,seed=7"
  ///   "retries=3,retry-backoff-us=100"  retry policy for gpu_guard
  /// "none" and "" yield an empty plan.  Throws nbwp::Error on unknown
  /// keys or malformed values.
  static FaultPlan parse(const std::string& spec);

  /// Human-readable one-line summary (for logs and manifests).
  std::string summary() const;
};

/// Mutable per-run fault state built from a FaultPlan.  Thread-safe; the
/// executors and the estimation pipeline share one injector through the
/// Platform, so kernel invocation indices and the virtual GPU clock are
/// global to the run — exactly like a real device.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Gate one GPU kernel invocation.  Throws DeviceFault when the plan
  /// schedules a failure for this invocation; otherwise advances the
  /// invocation counter and the GPU virtual clock by `expected_ns`.
  /// Fault events are counted as robustness.fault.gpu.{transient,hard}.
  void gpu_kernel(const char* what, double expected_ns);

  /// True once a hard GPU fault has triggered (the device is offline and
  /// every later gpu_kernel call fails hard).
  bool gpu_dead() const;

  /// Sigma multiplier for one timing observation: noise_spike_factor with
  /// probability noise_spike_rate, else 1.  Deterministic per seed.
  double noise_sigma_factor();

  uint64_t gpu_invocations() const;
  double gpu_busy_ms() const;

  /// Exponential backoff before retry `attempt` (1-based) of the failed
  /// invocation: retry_backoff_base_us * 2^(attempt-1) * jitter with
  /// jitter in [0.5, 1.5), derived by hashing (plan seed, invocation
  /// index, attempt).  Pure — no Rng state is consumed, so computing a
  /// backoff never perturbs the fault schedule, and the same run always
  /// backs off identically.
  double retry_backoff_ns(int attempt) const;

  /// Account `ns` of virtual host time spent backing off before a retry.
  /// Deliberately does NOT advance the GPU busy clock — the device sits
  /// idle while the host waits, so gpu-hard-after trigger points are
  /// unaffected.
  void charge_backoff(double ns);
  double backoff_ms() const;

  /// Restore pristine state (same plan, reseeded Rng): invocation counter,
  /// virtual clock, backoff accounting, and device liveness all reset.
  void reset();

 private:
  FaultPlan plan_;
  mutable std::mutex mutex_;
  Rng rng_;
  uint64_t gpu_invocations_ = 0;
  double gpu_busy_ns_ = 0.0;
  double backoff_ns_ = 0.0;
  bool gpu_dead_ = false;
};

}  // namespace nbwp::hetsim
