#include "hetsim/work_profile.hpp"

#include <algorithm>

namespace nbwp::hetsim {

namespace {
template <typename T>
double inflation_impl(std::span<const T> work, size_t first, size_t last,
                      int warp_size) {
  if (first >= last) return 1.0;
  double total = 0.0;
  double effective = 0.0;
  size_t i = first;
  while (i < last) {
    const size_t end = std::min(i + static_cast<size_t>(warp_size), last);
    double warp_max = 0.0;
    for (size_t j = i; j < end; ++j) {
      const double w = static_cast<double>(work[j]);
      total += w;
      warp_max = std::max(warp_max, w);
    }
    effective += warp_max * static_cast<double>(end - i);
    i = end;
  }
  return total <= 0.0 ? 1.0 : effective / total;
}
}  // namespace

double simd_inflation(std::span<const double> item_work, int warp_size) {
  return inflation_impl(item_work, 0, item_work.size(), warp_size);
}

double simd_inflation(std::span<const uint64_t> item_work, int warp_size) {
  return inflation_impl(item_work, 0, item_work.size(), warp_size);
}

double simd_inflation_range(std::span<const uint64_t> item_work, size_t first,
                            size_t last, int warp_size) {
  last = std::min(last, item_work.size());
  first = std::min(first, last);
  return inflation_impl(item_work, first, last, warp_size);
}

}  // namespace nbwp::hetsim
