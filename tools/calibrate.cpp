// Scratch calibration probe (not part of the library build).
#include <cstdio>
#include "core/baselines.hpp"
#include "core/exhaustive.hpp"
#include "core/sampling_partitioner.hpp"
#include "datasets/table2.hpp"
#include "hetalg/hetero_cc.hpp"
#include "hetalg/hetero_spmm.hpp"
#include "hetalg/hetero_spmm_hh.hpp"
using namespace nbwp;
int main() {
  const auto& plat = hetsim::Platform::reference();
  printf("NaiveStatic gpu share: %.1f%%\n", plat.naive_static_gpu_share_pct());

  printf("\n== CC (scale 1/8 or min) ==\n");
  for (const auto& spec : datasets::table2()) {
    const double scale = spec.paper_n > 1200000 ? 0.25 : 1.0;
    auto g = datasets::make_graph(spec, scale);
    hetalg::HeteroCc cc(std::move(g), plat);
    auto ex = core::exhaustive_search(cc, 1.0);
    core::SamplingConfig cfg;
    cfg.method = core::IdentifyMethod::kCoarseToFine;
    auto est = core::estimate_partition(cc, cfg);
    const double t_est_time = cc.time_ns(est.threshold);
    printf("%-16s n=%7u m=%9llu exh_t=%5.1f (gpu %4.1f) est_t=%5.1f exh_ms=%8.2f est_ms=%8.2f (+%5.1f%%) ovh=%5.1f%%\n",
           spec.name.c_str(), cc.input().num_vertices(),
           (unsigned long long)cc.input().num_edges(),
           ex.best_threshold, 100-ex.best_threshold, est.threshold,
           ex.best_time_ns/1e6, t_est_time/1e6,
           100.0*(t_est_time-ex.best_time_ns)/ex.best_time_ns,
           100.0*est.estimation_cost_ns/(est.estimation_cost_ns+t_est_time));
  }
  return 0;
}
