#include <cstdio>
#include "core/baselines.hpp"
#include "core/exhaustive.hpp"
#include "core/sampling_partitioner.hpp"
#include "datasets/table2.hpp"
#include "hetalg/hetero_spmm.hpp"
#include "hetalg/hetero_spmm_hh.hpp"
#include "core/extrapolate.hpp"
using namespace nbwp;
int main(int argc, char**) {
  const auto& plat = hetsim::Platform::reference();
  printf("NaiveStatic cpu share: %.1f\n", core::naive_static_cpu_share_pct(plat));
  printf("\n== SPMM (Alg 2) ==\n");
  for (const auto& spec : datasets::spmm_datasets()) {
    const double scale = spec.paper_n > 1200000 ? 0.25 : 1.0;
    auto a = datasets::make_matrix(spec, scale);
    hetalg::HeteroSpmm prob(std::move(a), plat);
    auto ex = core::exhaustive_search(prob, 1.0);
    core::SamplingConfig cfg;
    cfg.sample_factor = 0.25;
    cfg.method = core::IdentifyMethod::kRaceThenFine;
    auto est = core::estimate_partition(prob, cfg);
    const double te = prob.time_ns(est.threshold);
    printf("%-16s n=%7u nnz=%9llu work=%11llu exh_r=%5.1f est_r=%5.1f exh_ms=%9.2f est_ms=%9.2f (+%5.1f%%) ovh=%5.1f%%\n",
      spec.name.c_str(), prob.a().rows(), (unsigned long long)prob.a().nnz(),
      (unsigned long long)prob.total_work(), ex.best_threshold, est.threshold,
      ex.best_time_ns/1e6, te/1e6, 100*(te-ex.best_time_ns)/ex.best_time_ns,
      100*est.estimation_cost_ns/(est.estimation_cost_ns+te));
  }
  printf("\n== Scale-free HH (Alg 3) ==\n");
  for (const auto& spec : datasets::scale_free_datasets()) {
    auto a = datasets::make_matrix(spec, 1.0);
    hetalg::HeteroSpmmHh prob(std::move(a), plat);
    auto cands = prob.candidate_thresholds(192);
    auto ex = core::exhaustive_search_over(prob, cands);
    core::SamplingConfig cfg;
    cfg.sample_factor = 1.0;
    cfg.method = core::IdentifyMethod::kGradientDescent;
    cfg.gradient.log_space = true;
    cfg.gradient.starts = 2;
    cfg.gradient.max_iterations = 10;
    cfg.gradient.initial_step_fraction = 0.2;
    auto est = core::estimate_partition(
        prob, cfg,
        [](const hetalg::HeteroSpmmHh& f, const hetalg::HeteroSpmmHh& smp,
           double ts) { return core::work_share_extrapolate(f, smp, ts); });
    const double fold = core::fold_inversion(
        est.sample_threshold, (double)prob.sample_size(cfg.sample_factor));
    const double t_scaled = est.threshold;
    const double te = prob.time_ns(est.threshold);
    printf("%-16s n=%7u maxdeg=%6llu exh_t=%8.1f ts=%6.2f est=%8.1f fold=%8.1f exh_ms=%9.2f est_ms=%9.2f (+%6.1f%%) ovh=%5.2f%%\n",
      spec.name.c_str(), prob.a().rows(), (unsigned long long)prob.max_degree(),
      ex.best_threshold, est.sample_threshold, t_scaled, fold,
      ex.best_time_ns/1e6, te/1e6, 100*(te-ex.best_time_ns)/ex.best_time_ns,
      100*est.estimation_cost_ns/(est.estimation_cost_ns+te));
  }
  return 0;
}
