// nbwp_cli — command-line driver for the library.
//
//   nbwp_cli info
//       platform calibration and the Table II dataset catalog.
//   nbwp_cli estimate   --workload cc|spmm|hh|spmv --dataset <name>
//       run the Sample -> Identify -> Extrapolate framework and compare
//       the estimate against the exhaustive oracle and naive baselines.
//   nbwp_cli exhaustive --workload ... --dataset ...
//       just the oracle.
//   nbwp_cli sweep      --workload ... --dataset ... [--csv curve.csv]
//       full threshold -> makespan curve.
//   nbwp_cli run        --workload ... --dataset ... --threshold T
//                       [--trace run.json]
//       execute the heterogeneous algorithm once, print the phase
//       breakdown, optionally write a Chrome trace.
//   nbwp_cli batch      --batch <manifest> [--plan-cache on|off]
//                       [--plan-cache-capacity N] [--plan-cache-shards N]
//                       [--cache-snapshot s.txt] [--cache-restore s.txt]
//       plan every request in the manifest through the serve layer
//       (fingerprint cache + warm starts + in-flight dedup); each
//       manifest line is `workload=<w> dataset=<d> [scale=] [seed=]
//       [repeat=]` (see docs/SERVING.md for a worked example).  Malformed
//       lines are reported individually and the rest of the batch still
//       plans; the exit code is non-zero when any line was bad.
//       --cache-snapshot/--cache-restore persist the plan cache across
//       invocations (warm boot).
//
// K-way partitioning (docs/PARTITIONING.md): --devices K grows the
// simulated platform with K-2 extra accelerators (--accel-spec scale
// factors) and routes estimate/run through a PartitionDescriptor searched
// under --objective (spmm only).
//
// Observability flags work with every command: --metrics, --trace-real,
// --slo "<objectives>" [--slo-report s.json] (exit non-zero on
// violation), --flight-recorder f.json [--flight-threshold-ms T]
// (see docs/OBSERVABILITY.md for the SLO grammar and dump format).
//
// Datasets resolve against the synthetic Table II catalog, or against
// --mtx-dir when the original files are present.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "core/baselines.hpp"
#include "core/exhaustive.hpp"
#include "core/extrapolate.hpp"
#include "core/kway.hpp"
#include "core/robust_estimate.hpp"
#include "core/sampling_partitioner.hpp"
#include "exp/experiment.hpp"
#include "exp/report.hpp"
#include "hetalg/hetero_cc.hpp"
#include "hetalg/hetero_spmm.hpp"
#include "hetalg/hetero_spmm_hh.hpp"
#include "hetalg/hetero_spmv.hpp"
#include "hetsim/trace.hpp"
#include "obs/export.hpp"
#include "obs/manifest.hpp"
#include "obs/obs.hpp"
#include "obs/slo.hpp"
#include "serve/serve.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/strfmt.hpp"
#include "util/table.hpp"

namespace {

using namespace nbwp;

struct Request {
  std::string workload;
  std::string dataset;
  exp::SuiteOptions options;
  double threshold = -1;
  std::string csv;
  std::string trace;
  std::string metrics;     ///< --metrics: metric snapshot JSON path
  std::string trace_real;  ///< --trace-real: wall-clock Chrome trace path
  std::string fault_plan;  ///< --fault-plan: hetsim::FaultPlan spec
  double identify_deadline_ms = 0;  ///< --identify-deadline-ms
  std::string fallback = "auto";    ///< --fallback: auto|race|naive-static|off
  std::string batch_manifest;       ///< --batch: request manifest path
  bool plan_cache = true;           ///< --plan-cache on|off
  int plan_cache_capacity = 256;    ///< --plan-cache-capacity
  int plan_cache_shards = 4;        ///< --plan-cache-shards
  std::string cache_snapshot;       ///< --cache-snapshot: save path
  std::string cache_restore;        ///< --cache-restore: load path
  int devices = 2;                  ///< --devices: partition K ways
  std::string accel_spec;           ///< --accel-spec: accel scale factors
  std::string objective = "balanced";  ///< --objective: K-way cost objective
};

core::FallbackStage parse_fallback_stage(const std::string& s) {
  if (s == "auto") return core::FallbackStage::kSampled;
  if (s == "race") return core::FallbackStage::kRace;
  if (s == "naive-static") return core::FallbackStage::kNaiveStatic;
  throw Error("unknown --fallback value '" + s +
              "' (auto | race | naive-static | off)");
}

core::SamplingConfig config_for(const std::string& workload,
                                uint64_t seed) {
  core::SamplingConfig cfg;
  cfg.seed = seed;
  if (workload == "cc") {
    cfg.method = core::IdentifyMethod::kCoarseToFine;
    cfg.warm.halfwidth = 4;  // 9 probes vs ~27 for the cold 8-then-1 grid
    cfg.warm.step = 1;
  } else if (workload == "spmm" || workload == "spmv") {
    cfg.sample_factor = 0.25;
    cfg.method = core::IdentifyMethod::kRaceThenFine;
    cfg.warm.halfwidth = 3;  // 3 probes vs ~7 for the cold race + grid
    cfg.warm.step = 3;
  } else {  // hh
    cfg.method = core::IdentifyMethod::kGradientDescent;
    cfg.gradient.log_space = true;
    cfg.gradient.starts = 2;
    cfg.gradient.max_iterations = 10;
    cfg.gradient.initial_step_fraction = 0.2;
    cfg.warm.log_space = true;  // 7 probes vs ~20+ for cold multi-start
    cfg.warm.log_ratio = 1.5;
    cfg.warm.log_points = 3;
  }
  return cfg;
}

template <typename Problem, typename Estimate, typename Exhaust>
int drive(const char* command, const Request& req, const Problem& problem,
          const Estimate& estimate, const Exhaust& exhaust) {
  const auto& platform = problem.platform();
  if (std::strcmp(command, "exhaustive") == 0) {
    const auto ex = exhaust(problem);
    std::printf("exhaustive threshold: %.1f  (makespan %.3f ms)\n",
                ex.best_threshold, ex.best_time_ns / 1e6);
    return 0;
  }
  if (std::strcmp(command, "sweep") == 0) {
    const auto ex = exhaust(problem);
    Table table("threshold sweep — " + req.workload + " on " + req.dataset);
    table.set_header({"threshold", "makespan(ms)"});
    for (const auto& [t, ns] : ex.curve)
      table.add_row({Table::num(t, 1), Table::ns_to_ms(ns)});
    exp::emit(table, req.csv);
    return 0;
  }
  if (std::strcmp(command, "run") == 0) {
    const double t = req.threshold >= 0
                         ? req.threshold
                         : estimate(problem).threshold;
    const auto report = problem.run(t);
    std::printf("threshold %.1f: %s\n", t, report.summary().c_str());
    for (const auto& [k, v] : report.counters())
      std::printf("  %-18s %.0f\n", k.c_str(), v);
    if (!req.trace.empty()) {
      hetsim::write_chrome_trace_file(req.trace, report,
                                      req.workload + ":" + req.dataset);
      std::printf("trace written: %s\n", req.trace.c_str());
    }
    return 0;
  }
  // estimate (default)
  const auto ex = exhaust(problem);
  const auto est = estimate(problem);
  if (obs::metrics_enabled() || obs::trace_enabled()) {
    // Execute the algorithm once at the estimate so kernel spans and
    // thread-pool utilization show up alongside the estimation metrics.
    obs::Span span("execute");
    (void)problem.run(est.threshold);
  }
  Table table("estimate — " + req.workload + " on " + req.dataset);
  table.set_header({"strategy", "threshold", "makespan(ms)",
                    "vs exhaustive"});
  auto row = [&](const char* name, double t) {
    const double ns = problem.time_ns(t);
    table.add_row({name, Table::num(t, 1), Table::ns_to_ms(ns),
                   Table::pct(100.0 * (ns / ex.best_time_ns - 1.0))});
  };
  row("exhaustive", ex.best_threshold);
  row("sampling estimate", est.threshold);
  if (problem.threshold_hi() == 100.0) {
    row("naive static (FLOPS)",
        core::naive_static_cpu_share_pct(platform));
  }
  table.print(std::cout);
  std::printf("estimation cost: %.3f ms over %d sample runs\n",
              est.estimation_cost_ns / 1e6, est.evaluations);
  if constexpr (requires { est.stage; }) {
    std::printf("estimate stage: %s%s%s\n",
                core::fallback_stage_name(est.stage),
                est.reason.empty() ? "" : " — after ",
                est.reason.c_str());
  }
  return 0;
}

serve::PlanRequest make_batch_request(const serve::BatchEntry& entry,
                                      const std::string& id,
                                      const Request& req,
                                      const hetsim::Platform& platform) {
  const auto& spec = datasets::spec_by_name(entry.dataset);
  exp::SuiteOptions options = req.options;
  options.scale = entry.scale;
  options.seed = entry.seed;

  core::RobustConfig rcfg;
  rcfg.sampling = config_for(entry.workload, req.options.sampling_seed);
  rcfg.sampling.identify_wall_deadline_ns = req.identify_deadline_ms * 1e6;
  if (req.fallback != "off")
    rcfg.start_stage = parse_fallback_stage(req.fallback);

  if (entry.workload == "cc") {
    return serve::make_plan_request(
        id, entry.workload,
        hetalg::HeteroCc(exp::load_graph(spec, options), platform), rcfg);
  }
  if (entry.workload == "spmm") {
    return serve::make_plan_request(
        id, entry.workload,
        hetalg::HeteroSpmm(exp::load_matrix(spec, options), platform), rcfg);
  }
  if (entry.workload == "spmv") {
    return serve::make_plan_request(
        id, entry.workload,
        hetalg::HeteroSpmv(exp::load_matrix(spec, options), platform), rcfg);
  }
  if (entry.workload == "hh") {
    return serve::make_plan_request(
        id, entry.workload,
        hetalg::HeteroSpmmHh(exp::load_matrix(spec, options), platform),
        rcfg,
        [](const hetalg::HeteroSpmmHh& full,
           const hetalg::HeteroSpmmHh& sample, double ts) {
          return core::work_share_extrapolate(full, sample, ts);
        });
  }
  throw Error("unknown workload '" + entry.workload +
              "' in batch manifest (cc|spmm|hh|spmv)");
}

int run_batch(const Request& req) {
  hetsim::Platform platform = hetsim::Platform::reference();
  if (!req.fault_plan.empty()) {
    const auto plan = hetsim::FaultPlan::parse(req.fault_plan);
    platform.set_fault_plan(plan);
    log_info("fault plan: " + plan.summary());
  }
  // One bad manifest line must not abort the batch: plan every line that
  // parses, report every line that does not, exit non-zero if any did.
  const serve::BatchManifest manifest =
      serve::parse_batch_manifest(req.batch_manifest);
  for (const auto& error : manifest.errors)
    std::fprintf(stderr, "manifest error: %s\n",
                 error.format(req.batch_manifest).c_str());
  const auto& entries = manifest.entries;
  std::vector<serve::PlanRequest> requests;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (int r = 0; r < entries[i].repeat; ++r) {
      const std::string id = strfmt("%s:%s:%zu.%d",
                                    entries[i].workload.c_str(),
                                    entries[i].dataset.c_str(), i, r);
      requests.push_back(make_batch_request(entries[i], id, req, platform));
    }
  }

  serve::PlanService::Options options;
  options.cache_enabled = req.plan_cache;
  options.cache.capacity = static_cast<size_t>(req.plan_cache_capacity);
  options.cache.shards = static_cast<size_t>(req.plan_cache_shards);
  serve::PlanService service(options);
  if (!req.cache_restore.empty()) {
    const serve::SnapshotResult restored =
        serve::restore_plan_cache(service.cache(), req.cache_restore);
    std::printf("cache restore: %s (%zu entries%s%s)\n",
                restored.ok ? "ok" : "FAILED — cold start",
                restored.entries, restored.error.empty() ? "" : "; ",
                restored.error.c_str());
  }
  const auto results = service.plan_all(requests);

  Table table(strfmt("batch plan — %zu requests, cache %s",
                     requests.size(), req.plan_cache ? "on" : "off"));
  table.set_header({"request", "source", "stage", "threshold",
                    "makespan(ms)", "evals", "saved"});
  double evaluations = 0, saved = 0;
  for (const auto& r : results) {
    const std::string source =
        r.coalesced ? "coalesced" : serve::hit_kind_name(r.cache);
    table.add_row({r.id, source, core::fallback_stage_name(r.stage),
                   Table::num(r.threshold, 1),
                   Table::ns_to_ms(r.objective_ns),
                   Table::num(r.evaluations, 0), Table::num(r.evals_saved,
                                                            0)});
    evaluations += r.evaluations;
    saved += r.evals_saved;
  }
  table.print(std::cout);
  std::printf("identify evaluations: %.0f spent, %.0f saved "
              "(cache entries: %zu)\n",
              evaluations, saved, service.cache().size());
  if (!req.cache_snapshot.empty()) {
    const serve::SnapshotResult saved_snap =
        serve::save_plan_cache(service.cache(), req.cache_snapshot);
    if (!saved_snap.ok)
      throw Error("cache snapshot failed: " + saved_snap.error);
    std::printf("cache snapshot written: %s (%zu entries)\n",
                saved_snap.path.c_str(), saved_snap.entries);
  }
  return manifest.ok() ? 0 : 1;
}

/// Grow the platform to `devices` by appending scaled copies of the
/// primary GPU (throughput-like fields multiplied by the factor, one
/// comma-separated factor per accelerator; missing factors default to
/// successive halvings: 0.5, 0.25, ...).
void add_accels(hetsim::Platform& platform, int devices,
                const std::string& spec_csv) {
  std::vector<double> scales;
  std::istringstream in(spec_csv);
  std::string tok;
  while (std::getline(in, tok, ',')) {
    if (tok.empty()) continue;
    const double s = std::stod(tok);
    if (!(s > 0))
      throw Error("--accel-spec scale factors must be positive");
    scales.push_back(s);
  }
  for (int i = 0; i + 2 < devices; ++i) {
    const double scale = static_cast<size_t>(i) < scales.size()
                             ? scales[static_cast<size_t>(i)]
                             : std::pow(0.5, i + 1);
    hetsim::GpuSpec gpu = hetsim::kTeslaK40c;
    gpu.sm_count *= scale;
    gpu.cores *= scale;
    gpu.bw_stream_bps *= scale;
    gpu.bw_random_bps *= scale;
    gpu.full_occupancy_items *= scale;
    platform.add_accel(gpu, hetsim::kPcie3x16);
  }
}

/// estimate/run over a K > 2 PartitionDescriptor (spmm only — the other
/// executors stay scalar; see docs/PARTITIONING.md).
int run_kway_command(const char* command, const Request& req,
                     const hetsim::Platform& platform) {
  if (req.workload != "spmm")
    throw Error("--devices > 2 currently supports --workload spmm only");
  if (std::strcmp(command, "estimate") != 0 &&
      std::strcmp(command, "run") != 0)
    throw Error("--devices > 2 supports the estimate and run commands only");

  const auto& spec = datasets::spec_by_name(req.dataset);
  const hetalg::HeteroSpmm problem(exp::load_matrix(spec, req.options),
                                   platform);

  core::KwayConfig kcfg;
  kcfg.devices = req.devices;
  kcfg.objective = core::parse_cost_objective(req.objective);
  kcfg.robust.sampling = config_for("spmm", req.options.sampling_seed);
  kcfg.robust.sampling.identify_wall_deadline_ns =
      req.identify_deadline_ms * 1e6;
  if (req.fallback != "off")
    kcfg.robust.start_stage = parse_fallback_stage(req.fallback);

  const core::KwayEstimate est =
      core::robust_estimate_partition_kway(problem, kcfg);
  std::printf("%d-way descriptor (%s): %s\n", req.devices,
              core::cost_objective_name(kcfg.objective),
              est.descriptor.to_string().c_str());
  std::printf("stage: %s%s%s\n", core::fallback_stage_name(est.stage),
              est.reason.empty() ? "" : " — after ", est.reason.c_str());
  std::printf("modeled makespan: %.3f ms  (estimation cost %.3f ms over "
              "%d evaluations)\n",
              problem.kway_time_ns(est.descriptor) / 1e6,
              est.estimation_cost_ns / 1e6, est.evaluations);
  if (std::strcmp(command, "run") == 0) {
    const auto report = problem.run_kway(est.descriptor);
    std::printf("execution: %s\n", report.summary().c_str());
    for (const auto& [k, v] : report.counters())
      std::printf("  %-18s %.0f\n", k.c_str(), v);
    if (!req.trace.empty()) {
      hetsim::write_chrome_trace_file(req.trace, report,
                                      req.workload + ":" + req.dataset);
      std::printf("trace written: %s\n", req.trace.c_str());
    }
  }
  return 0;
}

int run_command(const char* command, const Request& req) {
  if (std::strcmp(command, "batch") == 0) return run_batch(req);
  // A by-value copy of the reference platform so an injected fault plan
  // stays local to this invocation.
  hetsim::Platform platform = hetsim::Platform::reference();
  if (!req.fault_plan.empty()) {
    const auto plan = hetsim::FaultPlan::parse(req.fault_plan);
    platform.set_fault_plan(plan);
    log_info("fault plan: " + plan.summary());
  }
  if (req.devices < 2)
    throw Error("--devices must be at least 2 (CPU + primary GPU)");
  if (req.devices > 2) {
    add_accels(platform, req.devices, req.accel_spec);
    return run_kway_command(command, req, platform);
  }
  const auto& spec = datasets::spec_by_name(req.dataset);
  auto cfg = config_for(req.workload, req.options.sampling_seed);
  cfg.identify_wall_deadline_ns = req.identify_deadline_ms * 1e6;

  core::RobustConfig rcfg;
  rcfg.sampling = cfg;
  if (req.fallback != "off")
    rcfg.start_stage = parse_fallback_stage(req.fallback);

  // Estimate through the guarded fallback chain unless --fallback off, in
  // which case estimation errors (deadline, faults) propagate to main().
  auto guarded = [&](const auto& p, const auto& rich) {
    if (req.fallback == "off") {
      const auto est = core::estimate_partition(p, cfg, rich);
      core::RobustEstimate out;
      out.threshold = est.threshold;
      out.estimation_cost_ns = est.estimation_cost_ns;
      out.evaluations = est.evaluations;
      out.sampled = est;
      return out;
    }
    return core::robust_estimate_partition(p, rcfg, rich);
  };
  auto scalar_extrapolate = [&cfg](const auto&, const auto&, double ts) {
    return cfg.extrapolate ? cfg.extrapolate(ts) : ts;
  };

  if (req.workload == "cc") {
    const hetalg::HeteroCc problem(exp::load_graph(spec, req.options),
                                   platform);
    return drive(command, req, problem,
                 [&](const hetalg::HeteroCc& p) {
                   return guarded(p, scalar_extrapolate);
                 },
                 [](const hetalg::HeteroCc& p) {
                   return core::exhaustive_search(p, 1.0);
                 });
  }
  if (req.workload == "spmm") {
    const hetalg::HeteroSpmm problem(exp::load_matrix(spec, req.options),
                                     platform);
    return drive(command, req, problem,
                 [&](const hetalg::HeteroSpmm& p) {
                   return guarded(p, scalar_extrapolate);
                 },
                 [](const hetalg::HeteroSpmm& p) {
                   return core::exhaustive_search(p, 1.0);
                 });
  }
  if (req.workload == "spmv") {
    const hetalg::HeteroSpmv problem(exp::load_matrix(spec, req.options),
                                     platform);
    return drive(command, req, problem,
                 [&](const hetalg::HeteroSpmv& p) {
                   return guarded(p, scalar_extrapolate);
                 },
                 [](const hetalg::HeteroSpmv& p) {
                   return core::exhaustive_search(p, 1.0);
                 });
  }
  if (req.workload == "hh") {
    const hetalg::HeteroSpmmHh problem(exp::load_matrix(spec, req.options),
                                       platform);
    return drive(command, req, problem,
                 [&](const hetalg::HeteroSpmmHh& p) {
                   return guarded(
                       p, [](const hetalg::HeteroSpmmHh& full,
                             const hetalg::HeteroSpmmHh& sample, double ts) {
                         return core::work_share_extrapolate(full, sample,
                                                             ts);
                       });
                 },
                 [](const hetalg::HeteroSpmmHh& p) {
                   return core::exhaustive_search_over(
                       p, p.candidate_thresholds(192));
                 });
  }
  std::fprintf(stderr, "unknown workload '%s' (cc|spmm|hh|spmv)\n",
               req.workload.c_str());
  return 1;
}

int info() {
  const auto& platform = hetsim::Platform::reference();
  std::printf("nbwp — nearly balanced work partitioning\n\n");
  std::printf("simulated platform (see src/hetsim/calibration.hpp):\n");
  std::printf("  CPU  %2.0f cores @ %.2f GHz, %.0f/%.0f GB/s stream/random\n",
              platform.cpu().spec().cores,
              platform.cpu().spec().freq_hz / 1e9,
              platform.cpu().spec().bw_stream_bps / 1e9,
              platform.cpu().spec().bw_random_bps / 1e9);
  std::printf("  GPU  %4.0f cores @ %.0f MHz, %.0f/%.0f GB/s stream/random\n",
              platform.gpu().spec().cores,
              platform.gpu().spec().freq_hz / 1e6,
              platform.gpu().spec().bw_stream_bps / 1e9,
              platform.gpu().spec().bw_random_bps / 1e9);
  std::printf("  PCIe %.0f GB/s, %.0f us latency\n",
              platform.link().spec().bandwidth_bps / 1e9,
              platform.link().spec().latency_ns / 1e3);
  std::printf("  NaiveStatic GPU share: %.1f%%\n\n",
              platform.naive_static_gpu_share_pct());
  exp::emit(exp::table_two(0.25, 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0) {
    std::printf(
        "usage: nbwp_cli <info|estimate|exhaustive|sweep|run|batch> "
        "[options]\n"
        "run `nbwp_cli estimate --help` for the option list.\n");
    return argc < 2 ? 1 : 0;
  }
  const char* command = argv[1];
  if (std::strcmp(command, "info") == 0) return info();

  Cli cli(std::string("nbwp_cli ") + command, "library driver");
  cli.add_option("workload", "cc", "cc | spmm | hh | spmv");
  cli.add_option("dataset", "cant", "Table II dataset name");
  cli.add_option("scale", "0", "generation scale (0 = default)");
  cli.add_option("seed", "1", "generation seed");
  cli.add_option("sampling-seed", "24301", "sampling seed");
  cli.add_option("mtx-dir", "", "directory with original .mtx files");
  cli.add_option("threshold", "-1", "run: threshold (default: estimate)");
  cli.add_option("devices", "2",
                 "partition across K devices (2 = the scalar CPU/GPU "
                 "threshold; >2 adds simulated accelerators, spmm only)");
  cli.add_option("accel-spec", "",
                 "comma-separated throughput scale factors for the extra "
                 "accelerators, e.g. 0.5,0.25 (default: halving)");
  cli.add_option("objective", "balanced",
                 "K-way cost objective: balanced | critical-path | greedy "
                 "| minmax (see docs/PARTITIONING.md)");
  cli.add_option("csv", "", "sweep: CSV output path");
  cli.add_option("trace", "", "run: virtual-time Chrome trace output path");
  cli.add_option("metrics", "", "write a metric snapshot JSON here");
  cli.add_option("trace-real", "",
                 "write a wall-clock Chrome/Perfetto trace here");
  cli.add_option("fault-plan", "",
                 "fault injection plan, e.g. gpu-hard@0,pcie-degrade=4 "
                 "(see hetsim/faults.hpp)");
  cli.add_option("identify-deadline-ms", "0",
                 "wall-clock budget for the identify search (0 = none)");
  cli.add_option("fallback", "auto",
                 "estimate fallback chain: auto | race | naive-static | off");
  cli.add_option("batch", "",
                 "batch: request manifest (workload=.. dataset=.. lines)");
  cli.add_option("plan-cache", "on", "batch: plan cache on | off");
  cli.add_option("plan-cache-capacity", "256",
                 "batch: total cached plans across shards");
  cli.add_option("plan-cache-shards", "4", "batch: plan cache shard count");
  cli.add_option("cache-snapshot", "",
                 "batch: save the plan cache here after planning "
                 "(versioned, checksummed; see docs/SERVING.md)");
  cli.add_option("cache-restore", "",
                 "batch: warm-boot the plan cache from this snapshot; a "
                 "corrupt file logs a warning and starts cold");
  cli.add_option("slo", "",
                 "evaluate objectives after the run, e.g. "
                 "'serve.plan_ms p99 < 50ms'; exit 1 on violation "
                 "(implies --metrics collection; see docs/OBSERVABILITY.md)");
  cli.add_option("slo-report", "", "write the SLO report JSON here");
  cli.add_option("flight-recorder", "",
                 "dump the last-requests flight ring JSON here at exit");
  cli.add_option("flight-threshold-ms", "0",
                 "flag requests slower than this as breaches (0 = off)");
  cli.add_option("log-level", "info", "debug | info | warn | error");
  if (!cli.parse(argc - 1, argv + 1)) return 0;

  Request req;
  req.workload = cli.str("workload");
  req.dataset = cli.str("dataset");
  req.options.scale = cli.real("scale");
  req.options.seed = static_cast<uint64_t>(cli.integer("seed"));
  req.options.sampling_seed =
      static_cast<uint64_t>(cli.integer("sampling-seed"));
  req.options.mtx_dir = cli.str("mtx-dir");
  req.threshold = cli.real("threshold");
  req.devices = static_cast<int>(cli.integer("devices"));
  req.accel_spec = cli.str("accel-spec");
  req.objective = cli.str("objective");
  req.csv = cli.str("csv");
  req.trace = cli.str("trace");
  req.metrics = cli.str("metrics");
  req.trace_real = cli.str("trace-real");
  req.fault_plan = cli.str("fault-plan");
  req.identify_deadline_ms = cli.real("identify-deadline-ms");
  req.fallback = cli.str("fallback");
  req.batch_manifest = cli.str("batch");
  req.plan_cache = cli.str("plan-cache") != "off";
  req.plan_cache_capacity =
      static_cast<int>(cli.integer("plan-cache-capacity"));
  req.plan_cache_shards = static_cast<int>(cli.integer("plan-cache-shards"));
  req.cache_snapshot = cli.str("cache-snapshot");
  req.cache_restore = cli.str("cache-restore");

  const std::string slo_spec = cli.str("slo");
  const std::string slo_report_path = cli.str("slo-report");
  const std::string flight_path = cli.str("flight-recorder");
  const double flight_threshold_ms = cli.real("flight-threshold-ms");

  try {
    set_log_level(parse_log_level(cli.str("log-level")));
    // SLO evaluation and the flight recorder read the metric registry /
    // request traces, so either flag opts into collection.
    if (!req.metrics.empty() || !slo_spec.empty() || !flight_path.empty())
      obs::set_metrics_enabled(true);
    if (!req.trace_real.empty()) obs::set_trace_enabled(true);
    // Parse the SLO spec *before* the run so a typo fails in seconds,
    // not after minutes of planning.
    std::optional<obs::SloMonitor> slo;
    if (!slo_spec.empty()) slo = obs::SloMonitor::parse(slo_spec);
    if (!flight_path.empty() || flight_threshold_ms > 0) {
      obs::FlightRecorder::Options flight;
      flight.latency_threshold_ms = flight_threshold_ms;
      obs::FlightRecorder::global().configure(flight);
    }

    int rc = run_command(command, req);

    if (slo) {
      const obs::SloReport report =
          slo->evaluate(obs::Registry::global());
      for (const auto& r : report.results) {
        std::printf("slo %-4s %s (observed %.4g, bound %.4g, burn %.2f%s)\n",
                    r.ok ? "ok" : "FAIL", r.objective.spec.c_str(),
                    r.observed, r.objective.bound, r.burn_rate,
                    r.missing ? ", metric missing" : "");
      }
      if (!slo_report_path.empty()) {
        std::ofstream f(slo_report_path);
        if (!f) throw Error("cannot open SLO report " + slo_report_path);
        obs::write_slo_report_json(f, report);
        std::printf("slo report written: %s\n", slo_report_path.c_str());
      }
      if (!report.ok() && rc == 0) rc = 1;
    }
    if (!flight_path.empty()) {
      obs::FlightRecorder::global().write_json_file(flight_path);
      std::printf("flight recorder dumped: %s\n", flight_path.c_str());
    }

    if (!req.metrics.empty()) {
      obs::RunManifest manifest;
      manifest.tool = "nbwp_cli";
      manifest.command = command;
      for (const auto& [k, v] : cli.items()) manifest.config[k] = v;
      manifest.outputs["metrics"] = req.metrics;
      if (!req.trace_real.empty())
        manifest.outputs["trace_real"] = req.trace_real;
      manifest.metrics = obs::Registry::global().snapshot();
      obs::write_metrics_json_file(req.metrics, manifest.metrics);
      obs::write_manifest_file(obs::manifest_path_for(req.metrics),
                               manifest);
      std::printf("metrics written: %s (+%s)\n", req.metrics.c_str(),
                  obs::manifest_path_for(req.metrics).c_str());
    }
    if (!req.trace_real.empty()) {
      obs::Tracer::global().write_chrome_trace_file(
          req.trace_real, req.workload + ":" + req.dataset);
      std::printf("real-time trace written: %s\n", req.trace_real.c_str());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
