#!/usr/bin/env python3
"""Render the bench CSVs as SVG figures (no third-party dependencies).

Usage:
    scripts/generate_figures.sh      # runs the benches with --csv, then this
    python3 scripts/make_figures.py results/ figures/

Each fig*.csv becomes a grouped bar / line chart that mirrors the paper's
plot: thresholds per dataset for the (a) figures, times per dataset for the
(b) figures, total time versus sample size for the sensitivity figures.
"""

import csv
import html
import os
import sys

WIDTH, HEIGHT = 960, 420
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 70, 30, 40, 110
PALETTE = ["#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c"]


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def is_number(s):
    try:
        float(s)
        return True
    except ValueError:
        return False


class Svg:
    def __init__(self, title):
        self.parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
            f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
            f'<text x="{WIDTH / 2}" y="20" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{html.escape(title)}</text>',
        ]

    def line(self, x1, y1, x2, y2, color="#888", width=1):
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"/>')

    def rect(self, x, y, w, h, color):
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" '
            f'height="{h:.1f}" fill="{color}"/>')

    def text(self, x, y, s, anchor="middle", rotate=None, size=12):
        transform = (f' transform="rotate(-40 {x:.1f} {y:.1f})"'
                     if rotate else "")
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="{anchor}" '
            f'font-size="{size}"{transform}>{html.escape(s)}</text>')

    def circle(self, x, y, color):
        self.parts.append(
            f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3.5" fill="{color}"/>')

    def polyline(self, points, color):
        pts = " ".join(f"{x:.1f},{y:.1f}" for x, y in points)
        self.parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="2"/>')

    def save(self, path):
        self.parts.append("</svg>")
        with open(path, "w") as f:
            f.write("\n".join(self.parts))


def plot_area():
    return (MARGIN_L, WIDTH - MARGIN_R, MARGIN_T, HEIGHT - MARGIN_B)


def y_scale(max_value):
    x0, x1, y0, y1 = plot_area()
    def to_y(v):
        return y1 - (v / max_value) * (y1 - y0)
    return to_y


def draw_axes(svg, max_value, unit):
    x0, x1, y0, y1 = plot_area()
    svg.line(x0, y0, x0, y1)
    svg.line(x0, y1, x1, y1)
    to_y = y_scale(max_value)
    for i in range(5):
        v = max_value * i / 4
        y = to_y(v)
        svg.line(x0 - 4, y, x0, y)
        svg.line(x0, y, x1, y, color="#e5e5e5")
        svg.text(x0 - 8, y + 4, f"{v:.3g}", anchor="end", size=10)
    svg.text(16, (y0 + y1) / 2, unit, anchor="middle")


def grouped_bars(title, labels, series, unit, out_path):
    """series: list of (name, [values])."""
    flat = [v for _, vs in series for v in vs if v is not None]
    if not flat:
        return
    svg = Svg(title)
    max_value = max(flat) * 1.08
    draw_axes(svg, max_value, unit)
    x0, x1, y0, y1 = plot_area()
    to_y = y_scale(max_value)
    groups = len(labels)
    group_w = (x1 - x0) / groups
    bar_w = group_w * 0.8 / max(1, len(series))
    for gi, label in enumerate(labels):
        gx = x0 + gi * group_w
        for si, (name, values) in enumerate(series):
            v = values[gi]
            if v is None:
                continue
            y = to_y(v)
            svg.rect(gx + group_w * 0.1 + si * bar_w, y, bar_w * 0.92,
                     y1 - y, PALETTE[si % len(PALETTE)])
        svg.text(gx + group_w / 2, y1 + 14, label, rotate=True, size=10)
    for si, (name, _) in enumerate(series):
        lx = x0 + 10 + si * 150
        svg.rect(lx, 26, 10, 10, PALETTE[si % len(PALETTE)])
        svg.text(lx + 14, 35, name, anchor="start", size=11)
    svg.save(out_path)
    print("wrote", out_path)


def line_chart(title, xs, series, unit, out_path):
    flat = [v for _, vs in series for v in vs if v is not None]
    if not flat:
        return
    svg = Svg(title)
    max_value = max(flat) * 1.08
    draw_axes(svg, max_value, unit)
    x0, x1, y0, y1 = plot_area()
    to_y = y_scale(max_value)
    def to_x(i):
        return x0 + (i + 0.5) * (x1 - x0) / len(xs)
    for si, (name, values) in enumerate(series):
        color = PALETTE[si % len(PALETTE)]
        points = [(to_x(i), to_y(v)) for i, v in enumerate(values)
                  if v is not None]
        svg.polyline(points, color)
        for x, y in points:
            svg.circle(x, y, color)
    for i, x_label in enumerate(xs):
        svg.text(to_x(i), y1 + 14, x_label, size=10)
    for si, (name, _) in enumerate(series):
        lx = x0 + 10 + si * 150
        svg.rect(lx, 26, 10, 10, PALETTE[si % len(PALETTE)])
        svg.text(lx + 14, 35, name, anchor="start", size=11)
    svg.save(out_path)
    print("wrote", out_path)


def render(csv_path, out_dir):
    header, rows = read_csv(csv_path)
    if not rows:
        return
    name = os.path.splitext(os.path.basename(csv_path))[0]
    labels = [r[0] for r in rows]
    numeric_cols = [c for c in range(1, len(header))
                    if all(is_number(r[c]) for r in rows)]
    series = [(header[c], [float(r[c]) for r in rows]) for c in numeric_cols]
    # Sensitivity files are line charts over the factor column.
    chart = line_chart if "sensitivity" in name or name.startswith(
        "fig4") or name.startswith("fig6") or name.startswith(
        "fig9") else grouped_bars
    unit = "ms" if ".b" in name or "time" in name else "threshold / %"
    chart(name, labels, series, unit,
          os.path.join(out_dir, name + ".svg"))


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "results"
    dst = sys.argv[2] if len(sys.argv) > 2 else "figures"
    os.makedirs(dst, exist_ok=True)
    for entry in sorted(os.listdir(src)):
        if entry.endswith(".csv"):
            render(os.path.join(src, entry), dst)


if __name__ == "__main__":
    main()
