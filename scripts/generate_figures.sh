#!/usr/bin/env bash
# Regenerate the paper figures as SVGs: run the figure benches with CSV
# output, then render with scripts/make_figures.py (stdlib-only Python).
#
#   scripts/generate_figures.sh [build-dir] [results-dir] [figures-dir]
set -euo pipefail

BUILD=${1:-build}
RESULTS=${2:-results}
FIGURES=${3:-figures}
mkdir -p "$RESULTS" "$FIGURES"

"$BUILD"/bench/fig1_dense_mm --csv "$RESULTS/fig1.csv"
"$BUILD"/bench/fig3_cc --csv "$RESULTS/fig3"
"$BUILD"/bench/fig5_spmm --csv "$RESULTS/fig5"
"$BUILD"/bench/fig8_scalefree --csv "$RESULTS/fig8"
"$BUILD"/bench/table1_summary --csv "$RESULTS/table1.csv"
"$BUILD"/bench/table2_datasets --csv "$RESULTS/table2.csv"

python3 "$(dirname "$0")/make_figures.py" "$RESULTS" "$FIGURES"
echo "figures in $FIGURES/"
