#!/usr/bin/env bash
# Refresh the committed perf baselines at the repo root:
#   BENCH_kernels.json — google-benchmark aggregates from kernels_microbench
#   BENCH_serve.json   — plan-service throughput rounds from serve_throughput
#
# Run on an otherwise idle machine.  Repetitions + random interleaving
# defend the medians against the frequency/thermal drift that single
# back-to-back runs suffer from; scripts/check_bench_regression.py then
# gates on machine-independent *ratios* within one file, so a snapshot
# from any reasonably quiet box is a usable baseline.
#
# Usage: scripts/bench_snapshot.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
REPS="${BENCH_REPS:-5}"

# Provenance for the run manifests (obs::collect_provenance): baselines
# committed from this snapshot stay traceable to the exact commit.
NBWP_GIT_SHA="$(git rev-parse HEAD 2>/dev/null || echo '')"
export NBWP_GIT_SHA

for exe in bench/kernels_microbench bench/serve_throughput; do
  if [[ ! -x "$BUILD_DIR/$exe" ]]; then
    echo "bench_snapshot: $BUILD_DIR/$exe not built" >&2
    echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
    exit 1
  fi
done

echo "bench_snapshot: loadavg $(cut -d' ' -f1-3 /proc/loadavg 2>/dev/null || echo '?')"

# kernels_microbench writes BENCH_kernels.json into the CWD by itself;
# the flags here replace single runs with interleaved median-of-N.
"$BUILD_DIR/bench/kernels_microbench" \
  --benchmark_repetitions="$REPS" \
  --benchmark_enable_random_interleaving=true \
  --benchmark_report_aggregates_only=true

# The adaptive-vs-pinned pairs that the CI gate keys on get a second,
# dedicated pass: a long full-suite run spans minutes of frequency /
# thermal drift that interleaving cannot fully cancel, while a short
# filtered run measures both sides of each ratio under one machine
# state — the same way the CI job measures its fresh side.  Raw
# repetitions are kept (no aggregates-only) because the regression
# gate keys on the min over repetitions.  These entries replace the
# full-suite ones in the snapshot.
"$BUILD_DIR/bench/kernels_microbench" \
  --benchmark_filter='BM_SpgemmParallel(Adaptive)?/|BM_SpgemmBandedParallel|BM_Cc(LabelProp|Adaptive)/|BM_SpmvParallel(Rowwise|Blocked)/|BM_Spgemm(Full|Numeric)Remultiply' \
  --benchmark_min_time=0.3 \
  --benchmark_repetitions="$REPS" \
  --benchmark_enable_random_interleaving=true \
  --benchmark_out=BENCH_pairs.tmp.json \
  --benchmark_out_format=json

python3 - <<'EOF'
import json
full = json.load(open("BENCH_kernels.json"))
pairs = json.load(open("BENCH_pairs.tmp.json"))
refreshed = {b["run_name"] for b in pairs["benchmarks"]}
full["benchmarks"] = [
    b for b in full["benchmarks"] if b["run_name"] not in refreshed
] + pairs["benchmarks"]
json.dump(full, open("BENCH_kernels.json", "w"), indent=1)
print(f"bench_snapshot: refreshed {len(refreshed)} gated benchmarks "
      "from the dedicated pass")
EOF
rm -f BENCH_pairs.tmp.json

# Defaults include the 10k-request stress phase and the SLO evaluation;
# the run also writes BENCH_serve.json.manifest.json (provenance: git
# SHA, hostname, CPU model) next to the JSON — commit both.
"$BUILD_DIR/bench/serve_throughput" --json BENCH_serve.json

python3 scripts/check_bench_regression.py \
  --baseline BENCH_kernels.json --current BENCH_kernels.json \
  --serve-baseline BENCH_serve.json --serve-current BENCH_serve.json
echo "bench_snapshot: wrote BENCH_kernels.json and BENCH_serve.json (+manifest)"
