#!/usr/bin/env python3
"""Perf-regression gate over kernels_microbench and serve_throughput JSON.

Statistic: the *minimum* real_time over a benchmark's repetitions when
raw repetition entries are present (the best-case run is the least
contaminated by scheduler interference and CPU-quota throttling — by
far the dominant noise on shared runners), falling back to the median
aggregate when the file holds only aggregates.

This is a smoke gate, not a precision instrument: tolerances are sized
to catch sustained regressions (a misrouted accumulator, a lost
optimization — historically 1.25x and worse) while staying quiet under
the ±10-20 % that multi-worker wall times jitter on shared/throttled
machines.  The controlled before/after numbers live in
docs/PERFORMANCE.md.

Two layers of checks:

1. Machine-independent ratio invariants *within* --current (these are the
   acceptance criteria of the adaptive-accumulator kernel, so they hold
   on any machine, including noisy CI runners):
     - BM_SpgemmParallelAdaptive/<n>/<w> must not be slower than
       BM_SpgemmParallel/<n>/<w> (the SPA-pinned baseline) beyond the
       ratio tolerance, at every measured worker count;
     - BM_SpgemmBandedParallel .../auto:1 (kAuto) must stay within the
       ratio tolerance of .../auto:0 (ForceSpa) on the dense-row input.

2. Cross-file comparison vs --baseline (the committed BENCH_kernels.json):
   the same ratios must not regress versus the snapshot, and with
   --absolute also each benchmark's time itself must stay within
   --absolute-tolerance.  Absolute times only mean something on the
   machine that produced the baseline, so --absolute is off by default
   and CI runs ratio checks only.

With --serve-current (and optionally --serve-baseline, the committed
BENCH_serve.json) the same two layers run over the serve bench's
per-class latency summaries (stress.latency_ms, written by
bench/serve_throughput):

1. Within-file invariants, machine-independent by construction:
   the bench's own claims hold (exact repeats identical, warm rounds
   cheaper, SLO ok), an exact cache hit is far cheaper than a cold miss
   (exact.p50 <= 0.5 * miss.p50, and even the exact tail beats the miss
   median: exact.p99 <= miss.p50), and a warm start does not cost more
   than --serve-near-bound cold solves.
2. Drift vs --serve-baseline: the exact/miss and near/miss p50 ratios
   may not grow past --serve-ratio-growth times the snapshot's value
   (floored at the invariant bound — class medians come from few miss
   samples, so this gate catches order-of-magnitude regressions such as
   a cache hit suddenly paying a solve, not small jitter).

Exit status is non-zero if any check fails; every check is printed.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_stats(path):
    """Map benchmark run_name -> min real_time (ns) over repetitions,
    falling back to the median aggregate where no raw entries exist."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    samples = defaultdict(list)
    medians = {}
    for entry in data.get("benchmarks", []):
        name = entry.get("run_name") or entry["name"]
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[name] = float(entry["real_time"])
        else:
            samples[name].append(float(entry["real_time"]))
    stats = {name: min(values) for name, values in samples.items()}
    for name, median in medians.items():
        stats.setdefault(name, median)
    if not stats:
        raise SystemExit(f"{path}: no benchmark entries found")
    return stats


def ratio_pairs(medians):
    """(label, adaptive_or_auto, pinned_spa) pairs present in a run."""
    pairs = []
    for name in sorted(medians):
        if name.startswith("BM_SpgemmParallelAdaptive/"):
            base = name.replace("BM_SpgemmParallelAdaptive/",
                                "BM_SpgemmParallel/")
            if base in medians:
                pairs.append((f"adaptive-vs-spa {name.split('/', 1)[1]}",
                              name, base))
        if name.startswith("BM_SpgemmBandedParallel/") and \
                name.endswith("/auto:1"):
            base = name[: -len("1")] + "0"
            if base in medians:
                pairs.append(("banded kAuto-vs-ForceSpa", name, base))
    return pairs


def serve_latency(path):
    """(claims dict, per-class latency summaries) from BENCH_serve.json."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    claims = {key: data.get(key) for key in
              ("exact_repeat_identical", "warm_fewer_evals_than_cold",
               "slo_ok")}
    latency = data.get("stress", {}).get("latency_ms", {})
    return claims, latency


def check_serve(args, check):
    claims, latency = serve_latency(args.serve_current)
    print(f"serve invariants in {args.serve_current}:")
    for key, value in claims.items():
        check(value is True, f"claim {key}: {value}")
    for cls in ("exact", "miss"):
        check(cls in latency and latency[cls].get("count", 0) > 0,
              f"latency class '{cls}' recorded")
    if not ("exact" in latency and "miss" in latency):
        return
    exact, miss = latency["exact"], latency["miss"]
    check(exact["p50"] <= 0.5 * miss["p50"],
          f"exact.p50 {exact['p50']:.4g}ms <= 0.5 x miss.p50 "
          f"{miss['p50']:.4g}ms")
    check(exact["p99"] <= miss["p50"],
          f"exact.p99 {exact['p99']:.4g}ms <= miss.p50 "
          f"{miss['p50']:.4g}ms")
    near = latency.get("near")
    if near:
        check(near["p50"] <= args.serve_near_bound * miss["p50"],
              f"near.p50 {near['p50']:.4g}ms <= {args.serve_near_bound} x "
              f"miss.p50 {miss['p50']:.4g}ms")

    if not args.serve_baseline:
        return
    _, base = serve_latency(args.serve_baseline)
    if not ("exact" in base and "miss" in base):
        print(f"  skip drift: {args.serve_baseline} has no class latencies")
        return
    print(f"serve ratio drift vs {args.serve_baseline}:")
    growth = args.serve_ratio_growth
    pairs = [("exact/miss p50", "exact", 0.5),
             ("near/miss p50", "near", args.serve_near_bound)]
    for label, cls, floor in pairs:
        if cls not in latency or cls not in base:
            print(f"  skip {label}: class '{cls}' missing")
            continue
        ratio = latency[cls]["p50"] / latency["miss"]["p50"]
        base_ratio = base[cls]["p50"] / base["miss"]["p50"]
        limit = max(floor, base_ratio * growth)
        check(ratio <= limit,
              f"{label}: ratio {ratio:.4g} vs snapshot {base_ratio:.4g} "
              f"(limit {limit:.3g})")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline",
                        help="committed BENCH_kernels.json")
    parser.add_argument("--current",
                        help="freshly produced benchmark JSON")
    parser.add_argument("--ratio-tolerance", type=float, default=0.25,
                        help="allowed adaptive/pinned ratio above 1.0 and "
                             "allowed ratio regression vs baseline")
    parser.add_argument("--absolute", action="store_true",
                        help="also compare absolute medians vs baseline "
                             "(same-machine runs only)")
    parser.add_argument("--absolute-tolerance", type=float, default=0.30,
                        help="allowed per-benchmark median slowdown vs "
                             "baseline with --absolute")
    parser.add_argument("--serve-current",
                        help="freshly produced BENCH_serve.json")
    parser.add_argument("--serve-baseline",
                        help="committed BENCH_serve.json for ratio drift")
    parser.add_argument("--serve-near-bound", type=float, default=2.0,
                        help="allowed near.p50 as a multiple of miss.p50")
    parser.add_argument("--serve-ratio-growth", type=float, default=8.0,
                        help="allowed growth of per-class latency ratios "
                             "vs the serve baseline (class medians come "
                             "from few samples; this catches order-of-"
                             "magnitude regressions)")
    args = parser.parse_args()

    if bool(args.baseline) != bool(args.current):
        parser.error("--baseline and --current must be given together")
    if not args.current and not args.serve_current:
        parser.error("nothing to check: give --baseline/--current and/or "
                     "--serve-current")

    failures = []

    def check(ok, line):
        print(("  ok   " if ok else "  FAIL ") + line)
        if not ok:
            failures.append(line)

    if args.serve_current:
        check_serve(args, check)
    if not args.current:
        if failures:
            print(f"check_bench_regression: FAIL ({len(failures)} checks)")
            return 1
        print("check_bench_regression: OK")
        return 0

    baseline = load_stats(args.baseline)
    current = load_stats(args.current)

    print(f"ratio invariants in {args.current}:")
    pairs = ratio_pairs(current)
    if not pairs:
        check(False, "no Adaptive/Banded benchmark pairs found "
                     "(wrong --benchmark_filter?)")
    bound = 1.0 + args.ratio_tolerance
    for label, fast, base in pairs:
        ratio = current[fast] / current[base]
        check(ratio <= bound,
              f"{label}: ratio {ratio:.3f} (bound {bound:.2f})")

    print(f"ratio drift vs {args.baseline}:")
    for label, fast, base in pairs:
        if fast not in baseline or base not in baseline:
            print(f"  skip {label}: not in baseline")
            continue
        base_ratio = baseline[fast] / baseline[base]
        ratio = current[fast] / current[base]
        # A ratio that was already generous in the snapshot may not creep
        # further; one that was comfortable may use the headroom up to the
        # invariant bound checked above.
        limit = max(bound, base_ratio * bound)
        check(ratio <= limit,
              f"{label}: ratio {ratio:.3f} vs snapshot {base_ratio:.3f} "
              f"(limit {limit:.2f})")

    if args.absolute:
        print(f"absolute medians vs {args.baseline}:")
        abs_bound = 1.0 + args.absolute_tolerance
        shared = sorted(set(baseline) & set(current))
        if not shared:
            check(False, "baseline and current share no benchmarks")
        for name in shared:
            ratio = current[name] / baseline[name]
            check(ratio <= abs_bound,
                  f"{name}: {current[name]:.0f}ns vs "
                  f"{baseline[name]:.0f}ns ({ratio:.2f}x)")

    if failures:
        print(f"check_bench_regression: FAIL ({len(failures)} checks)")
        return 1
    print("check_bench_regression: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
