#!/usr/bin/env python3
"""Perf-regression gate over kernels_microbench JSON output.

Statistic: the *minimum* real_time over a benchmark's repetitions when
raw repetition entries are present (the best-case run is the least
contaminated by scheduler interference and CPU-quota throttling — by
far the dominant noise on shared runners), falling back to the median
aggregate when the file holds only aggregates.

This is a smoke gate, not a precision instrument: tolerances are sized
to catch sustained regressions (a misrouted accumulator, a lost
optimization — historically 1.25x and worse) while staying quiet under
the ±10-20 % that multi-worker wall times jitter on shared/throttled
machines.  The controlled before/after numbers live in
docs/PERFORMANCE.md.

Two layers of checks:

1. Machine-independent ratio invariants *within* --current (these are the
   acceptance criteria of the adaptive-accumulator kernel, so they hold
   on any machine, including noisy CI runners):
     - BM_SpgemmParallelAdaptive/<n>/<w> must not be slower than
       BM_SpgemmParallel/<n>/<w> (the SPA-pinned baseline) beyond the
       ratio tolerance, at every measured worker count;
     - BM_SpgemmBandedParallel .../auto:1 (kAuto) must stay within the
       ratio tolerance of .../auto:0 (ForceSpa) on the dense-row input.

2. Cross-file comparison vs --baseline (the committed BENCH_kernels.json):
   the same ratios must not regress versus the snapshot, and with
   --absolute also each benchmark's time itself must stay within
   --absolute-tolerance.  Absolute times only mean something on the
   machine that produced the baseline, so --absolute is off by default
   and CI runs ratio checks only.

Exit status is non-zero if any check fails; every check is printed.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_stats(path):
    """Map benchmark run_name -> min real_time (ns) over repetitions,
    falling back to the median aggregate where no raw entries exist."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    samples = defaultdict(list)
    medians = {}
    for entry in data.get("benchmarks", []):
        name = entry.get("run_name") or entry["name"]
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[name] = float(entry["real_time"])
        else:
            samples[name].append(float(entry["real_time"]))
    stats = {name: min(values) for name, values in samples.items()}
    for name, median in medians.items():
        stats.setdefault(name, median)
    if not stats:
        raise SystemExit(f"{path}: no benchmark entries found")
    return stats


def ratio_pairs(medians):
    """(label, adaptive_or_auto, pinned_spa) pairs present in a run."""
    pairs = []
    for name in sorted(medians):
        if name.startswith("BM_SpgemmParallelAdaptive/"):
            base = name.replace("BM_SpgemmParallelAdaptive/",
                                "BM_SpgemmParallel/")
            if base in medians:
                pairs.append((f"adaptive-vs-spa {name.split('/', 1)[1]}",
                              name, base))
        if name.startswith("BM_SpgemmBandedParallel/") and \
                name.endswith("/auto:1"):
            base = name[: -len("1")] + "0"
            if base in medians:
                pairs.append(("banded kAuto-vs-ForceSpa", name, base))
    return pairs


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_kernels.json")
    parser.add_argument("--current", required=True,
                        help="freshly produced benchmark JSON")
    parser.add_argument("--ratio-tolerance", type=float, default=0.25,
                        help="allowed adaptive/pinned ratio above 1.0 and "
                             "allowed ratio regression vs baseline")
    parser.add_argument("--absolute", action="store_true",
                        help="also compare absolute medians vs baseline "
                             "(same-machine runs only)")
    parser.add_argument("--absolute-tolerance", type=float, default=0.30,
                        help="allowed per-benchmark median slowdown vs "
                             "baseline with --absolute")
    args = parser.parse_args()

    baseline = load_stats(args.baseline)
    current = load_stats(args.current)
    failures = []

    def check(ok, line):
        print(("  ok   " if ok else "  FAIL ") + line)
        if not ok:
            failures.append(line)

    print(f"ratio invariants in {args.current}:")
    pairs = ratio_pairs(current)
    if not pairs:
        check(False, "no Adaptive/Banded benchmark pairs found "
                     "(wrong --benchmark_filter?)")
    bound = 1.0 + args.ratio_tolerance
    for label, fast, base in pairs:
        ratio = current[fast] / current[base]
        check(ratio <= bound,
              f"{label}: ratio {ratio:.3f} (bound {bound:.2f})")

    print(f"ratio drift vs {args.baseline}:")
    for label, fast, base in pairs:
        if fast not in baseline or base not in baseline:
            print(f"  skip {label}: not in baseline")
            continue
        base_ratio = baseline[fast] / baseline[base]
        ratio = current[fast] / current[base]
        # A ratio that was already generous in the snapshot may not creep
        # further; one that was comfortable may use the headroom up to the
        # invariant bound checked above.
        limit = max(bound, base_ratio * bound)
        check(ratio <= limit,
              f"{label}: ratio {ratio:.3f} vs snapshot {base_ratio:.3f} "
              f"(limit {limit:.2f})")

    if args.absolute:
        print(f"absolute medians vs {args.baseline}:")
        abs_bound = 1.0 + args.absolute_tolerance
        shared = sorted(set(baseline) & set(current))
        if not shared:
            check(False, "baseline and current share no benchmarks")
        for name in shared:
            ratio = current[name] / baseline[name]
            check(ratio <= abs_bound,
                  f"{name}: {current[name]:.0f}ns vs "
                  f"{baseline[name]:.0f}ns ({ratio:.2f}x)")

    if failures:
        print(f"check_bench_regression: FAIL ({len(failures)} checks)")
        return 1
    print("check_bench_regression: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
