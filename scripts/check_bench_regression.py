#!/usr/bin/env python3
"""Perf-regression gate over kernels_microbench and serve_throughput JSON.

Statistic: the *minimum* real_time over a benchmark's repetitions when
raw repetition entries are present (the best-case run is the least
contaminated by scheduler interference and CPU-quota throttling — by
far the dominant noise on shared runners), falling back to the median
aggregate when the file holds only aggregates.

This is a smoke gate, not a precision instrument: tolerances are sized
to catch sustained regressions (a misrouted accumulator, a lost
optimization — historically 1.25x and worse) while staying quiet under
the ±10-20 % that multi-worker wall times jitter on shared/throttled
machines.  The controlled before/after numbers live in
docs/PERFORMANCE.md.

Two layers of checks:

1. Machine-independent ratio invariants *within* --current (these are the
   acceptance criteria of the adaptive kernels, so they hold on any
   machine, including noisy CI runners):
     - BM_SpgemmParallelAdaptive/<n>/<w> must not be slower than
       BM_SpgemmParallel/<n>/<w> (the SPA-pinned baseline) beyond the
       ratio tolerance, at every measured worker count;
     - BM_SpgemmBandedParallel .../auto:1 (kAuto) must stay within the
       ratio tolerance of .../auto:0 (ForceSpa) on the dense-row input;
     - BM_CcAdaptive/<w> must beat BM_CcLabelProp/<w> (sampling-based
       two-phase CC vs label propagation on the scale-free input) at
       every measured worker count;
     - BM_SpmvParallelBlocked/<w> must beat BM_SpmvParallelRowwise/<w>
       (row-blocked + SIMD vs the per-row parallel_for kernel it
       replaced) on the skewed input;
     - BM_SpgemmNumericRemultiply/<n> must run at most NUMERIC_BOUND of
       BM_SpgemmFullRemultiply/<n> (the >= 1.5x numeric-only re-multiply
       speedup over symbolic+numeric).

2. Cross-file comparison vs --baseline (the committed BENCH_kernels.json):
   the same ratios must not regress versus the snapshot, and with
   --absolute also each benchmark's time itself must stay within
   --absolute-tolerance.  Absolute times only mean something on the
   machine that produced the baseline, so --absolute is off by default
   and CI runs ratio checks only.

With --serve-current (and optionally --serve-baseline, the committed
BENCH_serve.json) the same two layers run over the serve bench's
per-class latency summaries (stress.latency_ms, written by
bench/serve_throughput):

1. Within-file invariants, machine-independent by construction:
   the bench's own claims hold (exact repeats identical, warm rounds
   cheaper, SLO ok), an exact cache hit is far cheaper than a cold miss
   (exact.p50 <= 0.5 * miss.p50, and even the exact tail beats the miss
   median: exact.p99 <= miss.p50), and a warm start does not cost more
   than --serve-near-bound cold solves.
2. Drift vs --serve-baseline: the exact/miss and near/miss p50 ratios
   may not grow past --serve-ratio-growth times the snapshot's value
   (floored at the invariant bound — class medians come from few miss
   samples, so this gate catches order-of-magnitude regressions such as
   a cache hit suddenly paying a solve, not small jitter).

Exit status is non-zero if any check fails; every check is printed.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_stats(path):
    """Map benchmark run_name -> min real_time (ns) over repetitions,
    falling back to the median aggregate where no raw entries exist.

    A file that cannot be parsed, holds no benchmark entries, or holds an
    entry without a usable real_time is a hard error: a malformed
    snapshot must fail the gate, not silently shrink it."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"{path}: cannot load benchmark JSON: {e}")
    samples = defaultdict(list)
    medians = {}
    for entry in data.get("benchmarks", []):
        name = entry.get("run_name") or entry.get("name")
        try:
            real_time = float(entry["real_time"])
        except (KeyError, TypeError, ValueError):
            raise SystemExit(
                f"{path}: benchmark entry {name!r} has no usable real_time")
        if entry.get("run_type") == "aggregate":
            if entry.get("aggregate_name") == "median":
                medians[name] = real_time
        else:
            samples[name].append(real_time)
    stats = {name: min(values) for name, values in samples.items()}
    for name, median in medians.items():
        stats.setdefault(name, median)
    if not stats:
        raise SystemExit(f"{path}: no benchmark entries found")
    return stats


# Numeric-only SpGEMM must re-multiply at least 1.5x faster than the full
# symbolic+numeric kernel (the PR acceptance criterion), so its time may
# be at most 1/1.5 of the full kernel's.
NUMERIC_BOUND = 1.0 / 1.5

# The adaptive-CC and blocked-SpMV kernels must beat the kernels they
# replaced, with headroom for shared-runner jitter on oversubscribed
# multi-worker wall times.  Calibration (min over 5 reps, 1-core runner;
# see docs/PERFORMANCE.md): cc adaptive-vs-lp measured 0.19-0.36 across
# w=2/4/8 -> bound 0.75 keeps ~2x headroom; spmv blocked-vs-rowwise
# measured 0.69-0.83 -> bound 0.95 keeps the must-beat property with
# ~15% jitter allowance.
CC_BOUND = 0.75
SPMV_BOUND = 0.95


def ratio_pairs(medians, default_bound):
    """(label, numerator, denominator, bound) tuples present in a run.

    Each tuple asserts medians[numerator] <= bound * medians[denominator];
    `bound` is `default_bound` (1 + --ratio-tolerance) for the not-worse
    invariants and a hard < 1 constant for the must-beat invariants.
    """
    pairs = []
    for name in sorted(medians):
        if name.startswith("BM_SpgemmParallelAdaptive/"):
            base = name.replace("BM_SpgemmParallelAdaptive/",
                                "BM_SpgemmParallel/")
            if base in medians:
                pairs.append((f"adaptive-vs-spa {name.split('/', 1)[1]}",
                              name, base, default_bound))
        if name.startswith("BM_SpgemmBandedParallel/") and \
                name.endswith("/auto:1"):
            base = name[: -len("1")] + "0"
            if base in medians:
                pairs.append(("banded kAuto-vs-ForceSpa", name, base,
                              default_bound))
        if name.startswith("BM_CcAdaptive/"):
            base = name.replace("BM_CcAdaptive/", "BM_CcLabelProp/")
            if base in medians:
                pairs.append((f"cc adaptive-vs-lp {name.split('/', 1)[1]}",
                              name, base, CC_BOUND))
        if name.startswith("BM_SpmvParallelBlocked/"):
            base = name.replace("BM_SpmvParallelBlocked/",
                                "BM_SpmvParallelRowwise/")
            if base in medians:
                pairs.append((f"spmv blocked-vs-rowwise "
                              f"{name.split('/', 1)[1]}",
                              name, base, SPMV_BOUND))
        if name.startswith("BM_SpgemmNumericRemultiply"):
            base = name.replace("BM_SpgemmNumericRemultiply",
                                "BM_SpgemmFullRemultiply")
            if base in medians:
                suffix = name.split("/", 1)[1] if "/" in name else ""
                pairs.append((f"spgemm numeric-vs-full {suffix}".rstrip(),
                              name, base, NUMERIC_BOUND))
    return pairs


def serve_latency(path):
    """(claims dict, per-class latency summaries) from BENCH_serve.json."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    claims = {key: data.get(key) for key in
              ("exact_repeat_identical", "warm_fewer_evals_than_cold",
               "slo_ok")}
    latency = data.get("stress", {}).get("latency_ms", {})
    return claims, latency


def check_serve(args, check):
    claims, latency = serve_latency(args.serve_current)
    print(f"serve invariants in {args.serve_current}:")
    for key, value in claims.items():
        check(value is True, f"claim {key}: {value}")
    for cls in ("exact", "miss"):
        check(cls in latency and latency[cls].get("count", 0) > 0,
              f"latency class '{cls}' recorded")
    if not ("exact" in latency and "miss" in latency):
        return
    exact, miss = latency["exact"], latency["miss"]
    check(exact["p50"] <= 0.5 * miss["p50"],
          f"exact.p50 {exact['p50']:.4g}ms <= 0.5 x miss.p50 "
          f"{miss['p50']:.4g}ms")
    check(exact["p99"] <= miss["p50"],
          f"exact.p99 {exact['p99']:.4g}ms <= miss.p50 "
          f"{miss['p50']:.4g}ms")
    near = latency.get("near")
    if near:
        check(near["p50"] <= args.serve_near_bound * miss["p50"],
              f"near.p50 {near['p50']:.4g}ms <= {args.serve_near_bound} x "
              f"miss.p50 {miss['p50']:.4g}ms")

    if not args.serve_baseline:
        return
    _, base = serve_latency(args.serve_baseline)
    print(f"serve ratio drift vs {args.serve_baseline}:")
    if not ("exact" in base and "miss" in base):
        # A committed serve baseline without class latencies is stale or
        # malformed; fail instead of silently skipping the drift layer.
        check(False, f"baseline {args.serve_baseline} has no exact/miss "
                     f"class latencies (regenerate the snapshot)")
        return
    growth = args.serve_ratio_growth
    pairs = [("exact/miss p50", "exact", 0.5),
             ("near/miss p50", "near", args.serve_near_bound)]
    for label, cls, floor in pairs:
        if cls not in latency:
            # The class never occurred in this (short) run; only "near"
            # is legitimately optional, and its absence is visible above.
            print(f"  skip {label}: class '{cls}' absent from current run")
            continue
        if cls not in base:
            check(False, f"{label}: class '{cls}' missing from baseline "
                         f"{args.serve_baseline} (regenerate the snapshot)")
            continue
        cur_p50 = latency[cls]["p50"]
        miss_p50 = latency["miss"]["p50"]
        ratio = cur_p50 / miss_p50
        base_ratio = base[cls]["p50"] / base["miss"]["p50"]
        limit = max(floor, base_ratio * growth)
        check(ratio <= limit,
              f"{label}: ratio {ratio:.4g} = {cur_p50:.4g}ms / "
              f"{miss_p50:.4g}ms vs snapshot {base_ratio:.4g} "
              f"(limit {limit:.3g})")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline",
                        help="committed BENCH_kernels.json")
    parser.add_argument("--current",
                        help="freshly produced benchmark JSON")
    parser.add_argument("--ratio-tolerance", type=float, default=0.25,
                        help="allowed adaptive/pinned ratio above 1.0 and "
                             "allowed ratio regression vs baseline")
    parser.add_argument("--absolute", action="store_true",
                        help="also compare absolute medians vs baseline "
                             "(same-machine runs only)")
    parser.add_argument("--absolute-tolerance", type=float, default=0.30,
                        help="allowed per-benchmark median slowdown vs "
                             "baseline with --absolute")
    parser.add_argument("--serve-current",
                        help="freshly produced BENCH_serve.json")
    parser.add_argument("--serve-baseline",
                        help="committed BENCH_serve.json for ratio drift")
    parser.add_argument("--serve-near-bound", type=float, default=2.0,
                        help="allowed near.p50 as a multiple of miss.p50")
    parser.add_argument("--serve-ratio-growth", type=float, default=8.0,
                        help="allowed growth of per-class latency ratios "
                             "vs the serve baseline (class medians come "
                             "from few samples; this catches order-of-"
                             "magnitude regressions)")
    args = parser.parse_args()

    if bool(args.baseline) != bool(args.current):
        parser.error("--baseline and --current must be given together")
    if not args.current and not args.serve_current:
        parser.error("nothing to check: give --baseline/--current and/or "
                     "--serve-current")

    failures = []

    def check(ok, line):
        print(("  ok   " if ok else "  FAIL ") + line)
        if not ok:
            failures.append(line)

    if args.serve_current:
        check_serve(args, check)
    if not args.current:
        if failures:
            print(f"check_bench_regression: FAIL ({len(failures)} checks)")
            return 1
        print("check_bench_regression: OK")
        return 0

    baseline = load_stats(args.baseline)
    current = load_stats(args.current)

    print(f"ratio invariants in {args.current}:")
    default_bound = 1.0 + args.ratio_tolerance
    pairs = ratio_pairs(current, default_bound)
    if not pairs:
        check(False, "no gated benchmark pairs found "
                     "(wrong --benchmark_filter?)")
    for label, fast, base, bound in pairs:
        ratio = current[fast] / current[base]
        check(ratio <= bound,
              f"{label}: ratio {ratio:.3f} = {current[fast]:.0f}ns / "
              f"{current[base]:.0f}ns (bound {bound:.2f})")

    print(f"ratio drift vs {args.baseline}:")
    drift_bound = default_bound
    for label, fast, base, _ in pairs:
        # A gated pair absent from the committed snapshot means the
        # baseline was never regenerated for this gate: fail loudly
        # instead of skipping the drift check.
        if fast not in baseline or base not in baseline:
            check(False, f"{label}: {fast if fast not in baseline else base} "
                         f"missing from baseline {args.baseline} "
                         f"(regenerate with scripts/bench_snapshot.sh)")
            continue
        base_ratio = baseline[fast] / baseline[base]
        ratio = current[fast] / current[base]
        # A ratio that was already generous in the snapshot may not creep
        # further; one that was comfortable may use the headroom up to the
        # invariant bound checked above.
        limit = max(drift_bound, base_ratio * drift_bound)
        check(ratio <= limit,
              f"{label}: ratio {ratio:.3f} = {current[fast]:.0f}ns / "
              f"{current[base]:.0f}ns vs snapshot {base_ratio:.3f} "
              f"(limit {limit:.2f})")

    if args.absolute:
        print(f"absolute medians vs {args.baseline}:")
        abs_bound = 1.0 + args.absolute_tolerance
        shared = sorted(set(baseline) & set(current))
        if not shared:
            check(False, "baseline and current share no benchmarks")
        for name in shared:
            ratio = current[name] / baseline[name]
            check(ratio <= abs_bound,
                  f"{name}: {current[name]:.0f}ns vs "
                  f"{baseline[name]:.0f}ns ({ratio:.2f}x)")

    if failures:
        print(f"check_bench_regression: FAIL ({len(failures)} checks)")
        return 1
    print("check_bench_regression: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
