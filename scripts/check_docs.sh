#!/usr/bin/env bash
# Validate the documentation graph:
#   1. every relative markdown link in README/EXPERIMENTS/DESIGN/ROADMAP
#      and docs/*.md resolves to a file in the repo;
#   2. every inline-code file path mentioned in docs/*.md exists, either
#      as written or under src/ (docs use include-style paths like
#      `util/rng.hpp` for src/util/rng.hpp).
# Exits non-zero listing every dangling reference.  No dependencies
# beyond python3.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import glob
import os
import re
import sys

md_files = sorted(
    [p for p in ("README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md")
     if os.path.exists(p)]
    + glob.glob("docs/*.md"))

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE = re.compile(r"`([^`\n]+)`")
PATHLIKE = re.compile(r"^[A-Za-z0-9_.-]+(/[A-Za-z0-9_.-]+)+\."
                      r"(hpp|cpp|h|cc|sh|py|cmake|md)$")

def strip_fenced(text):
    # Fenced blocks hold example output and shell transcripts, not
    # repo-path claims; only inline code and links are checked.
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)

errors = []
for md in md_files:
    with open(md, encoding="utf-8") as f:
        text = strip_fenced(f.read())
    base = os.path.dirname(md)

    for target in LINK.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        if not os.path.exists(os.path.normpath(os.path.join(base, target))):
            errors.append(f"{md}: dangling link ({target})")

    if not md.startswith("docs/"):
        continue
    for span in CODE.findall(text):
        if not PATHLIKE.match(span):
            continue
        if not (os.path.exists(span) or os.path.exists(os.path.join("src", span))):
            errors.append(f"{md}: missing code path ({span})")

if errors:
    print("check_docs: FAIL")
    for e in errors:
        print("  " + e)
    sys.exit(1)
print(f"check_docs: OK ({len(md_files)} files checked)")
EOF
