#!/usr/bin/env bash
# Validate the documentation graph:
#   1. every relative markdown link in README/EXPERIMENTS/DESIGN/ROADMAP
#      and docs/*.md resolves to a file in the repo;
#   2. every inline-code file path mentioned in docs/*.md exists, either
#      as written or under src/ (docs use include-style paths like
#      `util/rng.hpp` for src/util/rng.hpp);
#   3. every `--flag` mentioned in inline code in the checked files is
#      actually registered by a binary (apps/bench cli.add_option) or a
#      script (argparse add_argument), and every nbwp_cli flag appears in
#      the docs/ARCHITECTURE.md flag table — stale flag tables were how
#      renamed options went unnoticed.
# Exits non-zero listing every dangling reference.  No dependencies
# beyond python3.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import glob
import os
import re
import sys

md_files = sorted(
    [p for p in ("README.md", "EXPERIMENTS.md", "DESIGN.md", "ROADMAP.md")
     if os.path.exists(p)]
    + glob.glob("docs/*.md"))

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE = re.compile(r"`([^`\n]+)`")
PATHLIKE = re.compile(r"^[A-Za-z0-9_.-]+(/[A-Za-z0-9_.-]+)+\."
                      r"(hpp|cpp|h|cc|sh|py|cmake|md)$")

def strip_fenced(text):
    # Fenced blocks hold example output and shell transcripts, not
    # repo-path claims; only inline code and links are checked.
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        out.append("" if fenced else line)
    return "\n".join(out)

# --- CLI flag inventory ----------------------------------------------------
# nbwp_cli flags are checked strictly (docs must match apps/nbwp_cli.cpp);
# bench binaries and python scripts contribute to the known set so their
# documented flags are verified too.
ADD_OPTION = re.compile(r'add_option\("([a-z0-9-]+)"')
ADD_ARGUMENT = re.compile(r'add_argument\("--([a-z0-9-]+)"')

def flags_in(paths, pattern):
    found = set()
    for path in paths:
        with open(path, encoding="utf-8") as f:
            found.update(pattern.findall(f.read()))
    return found

cli_flags = flags_in(["apps/nbwp_cli.cpp"], ADD_OPTION) | {"help"}
known_flags = (cli_flags
               | flags_in(glob.glob("bench/*.cpp"), ADD_OPTION)
               | flags_in(glob.glob("scripts/*.py"), ADD_ARGUMENT)
               | {"flag", "opt", "json"}   # util/cli.hpp generics + bench
               | {"build", "output-on-failure"})  # cmake/ctest invocations
FLAG = re.compile(r"--([a-z][a-z0-9-]*)")

errors = []
for md in md_files:
    with open(md, encoding="utf-8") as f:
        text = strip_fenced(f.read())
    base = os.path.dirname(md)

    for target in LINK.findall(text):
        if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
            continue
        target = target.split("#", 1)[0]
        if not target:  # pure in-page anchor
            continue
        if not os.path.exists(os.path.normpath(os.path.join(base, target))):
            errors.append(f"{md}: dangling link ({target})")

    for span in CODE.findall(text):
        # google-benchmark's own flags are not ours to verify.
        for flag in FLAG.findall(span):
            if flag.startswith("benchmark") or flag in known_flags:
                continue
            errors.append(f"{md}: unknown CLI flag (--{flag})")

    if not md.startswith("docs/"):
        continue
    for span in CODE.findall(text):
        if not PATHLIKE.match(span):
            continue
        if not (os.path.exists(span) or os.path.exists(os.path.join("src", span))):
            errors.append(f"{md}: missing code path ({span})")

# Reverse direction: the nbwp_cli flag table in docs/ARCHITECTURE.md must
# cover every registered option.
if os.path.exists("docs/ARCHITECTURE.md"):
    with open("docs/ARCHITECTURE.md", encoding="utf-8") as f:
        documented = set(FLAG.findall(f.read()))
    for flag in sorted(cli_flags - documented - {"help"}):
        errors.append(
            f"docs/ARCHITECTURE.md: nbwp_cli flag --{flag} missing from "
            "the flag table")

if errors:
    print("check_docs: FAIL")
    for e in errors:
        print("  " + e)
    sys.exit(1)
print(f"check_docs: OK ({len(md_files)} files checked)")
EOF
